package dataset

import (
	"strings"
	"testing"
)

func TestPaperExampleStructure(t *testing.T) {
	pe := NewPaperExample()
	if pe.Ontology.NumTerms() != 11 {
		t.Errorf("terms = %d", pe.Ontology.NumTerms())
	}
	if pe.Network.N() != 22 {
		t.Errorf("proteins = %d", pe.Network.N())
	}
	if got := len(pe.Motif.Occurrences); got != 4 {
		t.Errorf("occurrences = %d", got)
	}
	// Every occurrence embeds the 4-cycle.
	for k, occ := range pe.Motif.Occurrences {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				if pe.Motif.Pattern.HasEdge(i, j) && !pe.Network.HasEdge(int(occ[i]), int(occ[j])) {
					t.Errorf("occurrence %d misses edge (%d,%d)", k, i, j)
				}
			}
		}
	}
	// Table 2 spot checks.
	p1 := pe.Corpus.Terms(0)
	if len(p1) != 3 {
		t.Errorf("p1 annotations = %d, want 3", len(p1))
	}
	if pe.Corpus.Annotated(16) { // p17 is unannotated
		t.Error("p17 should be unannotated")
	}
	// Total direct = 585 in Table 1.
	sum := 0
	for _, c := range pe.Direct {
		sum += c
	}
	if sum != 585 {
		t.Errorf("direct sum = %d, want 585", sum)
	}
}

func TestPaperExampleWeightsRoot(t *testing.T) {
	pe := NewPaperExample()
	w := pe.Weights()
	if w[pe.Term("G01")] != 1 {
		t.Errorf("root weight = %v", w[pe.Term("G01")])
	}
}

func TestYeastScale(t *testing.T) {
	cfg := DefaultYeastConfig()
	cfg.Proteins = 800
	cfg.Edges = 1400
	cfg.TermsPerBranch = 120
	cfg.Templates = []TemplateSpec{
		{Size: 5, Edges: 2, Instances: 25, PoolSize: 15},
		{Size: 8, Edges: 2, Instances: 25, PoolSize: 24},
	}
	y := NewYeast(cfg)
	if y.Network.N() != 800 {
		t.Fatalf("N = %d", y.Network.N())
	}
	if y.Network.M() < cfg.Edges {
		t.Errorf("M = %d, want >= %d", y.Network.M(), cfg.Edges)
	}
	if len(y.Planted) != 2 {
		t.Fatalf("planted = %d", len(y.Planted))
	}
	for ti, pt := range y.Planted {
		if len(pt.Instances) < 15 {
			t.Errorf("template %d has only %d instances", ti, len(pt.Instances))
		}
		for _, inst := range pt.Instances {
			n := pt.Pattern.N()
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if pt.Pattern.HasEdge(i, j) && !y.Network.HasEdge(int(inst[i]), int(inst[j])) {
						t.Fatalf("template %d instance not embedded", ti)
					}
				}
			}
		}
	}
	// Coverage near target on each branch.
	for b := 0; b < 3; b++ {
		cov := float64(y.Corpora[b].NumAnnotated()) / 800
		if cov < 0.75 || cov > 0.95 {
			t.Errorf("branch %d coverage = %.2f", b, cov)
		}
	}
}

func TestYeastPositionCoherence(t *testing.T) {
	// Corresponding positions across instances must share annotation terms
	// far more often than random pairs do.
	cfg := DefaultYeastConfig()
	cfg.Proteins = 600
	cfg.Edges = 1000
	cfg.TermsPerBranch = 150
	cfg.Templates = []TemplateSpec{{Size: 6, Edges: 2, Instances: 30, PoolSize: 18}}
	y := NewYeast(cfg)
	c := y.Corpora[0]
	pt := y.Planted[0]
	share := func(a, b int32) bool {
		for _, x := range c.Terms(int(a)) {
			for _, y2 := range c.Terms(int(b)) {
				if x == y2 {
					return true
				}
			}
		}
		return false
	}
	same, cross := 0, 0
	sameN, crossN := 0, 0
	for i := 0; i < len(pt.Instances); i++ {
		for j := i + 1; j < len(pt.Instances); j++ {
			for v := 0; v < 6; v++ {
				a, b := pt.Instances[i][v], pt.Instances[j][v]
				if a == b {
					continue
				}
				sameN++
				if share(a, b) {
					same++
				}
				w := (v + 1) % 6
				a2, b2 := pt.Instances[i][v], pt.Instances[j][w]
				if a2 != b2 {
					crossN++
					if share(a2, b2) {
						cross++
					}
				}
			}
		}
	}
	sameRate := float64(same) / float64(sameN)
	crossRate := float64(cross) / float64(crossN)
	if sameRate < 0.5 {
		t.Errorf("same-position term sharing rate = %.2f, want >= 0.5", sameRate)
	}
	if sameRate < 2*crossRate {
		t.Errorf("position coherence weak: same=%.2f cross=%.2f", sameRate, crossRate)
	}
}

func TestMIPSScale(t *testing.T) {
	cfg := DefaultMIPSConfig()
	cfg.Proteins = 500
	cfg.Edges = 700
	m := NewMIPS(cfg)
	if m.Task.Network.N() != 500 {
		t.Fatalf("N = %d", m.Task.Network.N())
	}
	if m.Task.Network.M() < 700 {
		t.Errorf("M = %d", m.Task.Network.M())
	}
	annFrac := float64(m.Task.NumAnnotated()) / 500
	if annFrac < 0.8 || annFrac > 1.0 {
		t.Errorf("annotated fraction = %.2f", annFrac)
	}
	if len(m.Planted) == 0 {
		t.Fatal("no planted templates")
	}
	// Category terms resolve.
	for c, ct := range m.CategoryTerm {
		if m.CategoryOf(ct) != c {
			t.Errorf("CategoryOf(categoryTerm[%d]) = %d", c, m.CategoryOf(ct))
		}
	}
	if m.CategoryOf(m.Ontology.Index("FC:root")) != -1 {
		t.Error("root should have no category")
	}
}

func TestMIPSPositionCategories(t *testing.T) {
	// Within a planted template, proteins at the same position must mostly
	// share their primary category.
	cfg := DefaultMIPSConfig()
	cfg.Proteins = 600
	cfg.Edges = 850
	m := NewMIPS(cfg)
	pt := m.Planted[0]
	agree, total := 0, 0
	nv := pt.Pattern.N()
	for v := 0; v < nv; v++ {
		// Majority category at position v.
		counts := map[int]int{}
		for _, inst := range pt.Instances {
			p := int(inst[v])
			if len(m.Task.Functions[p]) > 0 {
				counts[m.Task.Functions[p][0]]++
			}
		}
		bestC, bestN, n := -1, 0, 0
		for c, k := range counts {
			n += k
			if k > bestN {
				bestC, bestN = c, k
			}
		}
		_ = bestC
		agree += bestN
		total += n
	}
	if total == 0 {
		t.Fatal("no annotated planted proteins")
	}
	if rate := float64(agree) / float64(total); rate < 0.6 {
		t.Errorf("position-category agreement = %.2f, want >= 0.6", rate)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	src := "# comment\nA\tB\nB C\nA\tC\nA A\nB\tA\n"
	g, names, err := LoadEdgeList(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	var sb strings.Builder
	if err := WriteEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, names2, err := LoadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() || len(names2) != len(names) {
		t.Errorf("round trip: M %d->%d names %d->%d", g.M(), g2.M(), len(names), len(names2))
	}
}

func TestEdgeListMalformed(t *testing.T) {
	if _, _, err := LoadEdgeList(strings.NewReader("just-one-column\n")); err == nil {
		t.Error("malformed line accepted")
	}
}

func TestAnnotationsRoundTrip(t *testing.T) {
	pe := NewPaperExample()
	names := make([]string, 22)
	for i := range names {
		names[i] = pe.Network.Name(i)
	}
	var sb strings.Builder
	if err := WriteAnnotations(&sb, pe.Corpus, names); err != nil {
		t.Fatal(err)
	}
	c2, skipped, err := LoadAnnotations(strings.NewReader(sb.String()), pe.Ontology, names)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped = %d", skipped)
	}
	for p := 0; p < 22; p++ {
		a, b := pe.Corpus.Terms(p), c2.Terms(p)
		if len(a) != len(b) {
			t.Fatalf("protein %d terms %d -> %d", p, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("protein %d terms differ", p)
			}
		}
	}
}

func TestAnnotationsSkipsUnknown(t *testing.T) {
	pe := NewPaperExample()
	src := "p1\tG04\nnosuch\tG04\np1\tZZ:missing\n"
	names := make([]string, 22)
	for i := range names {
		names[i] = pe.Network.Name(i)
	}
	c, skipped, err := LoadAnnotations(strings.NewReader(src), pe.Ontology, names)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 2 {
		t.Errorf("skipped = %d, want 2", skipped)
	}
	if len(c.Terms(0)) != 1 {
		t.Errorf("p1 terms = %v", c.Terms(0))
	}
}

func TestMIPSCorpusInformativeLeaves(t *testing.T) {
	cfg := DefaultMIPSConfig()
	m := NewMIPS(cfg)
	direct := m.Corpus.DirectCounts()
	inf := m.Ontology.InformativeFC(direct, 30)
	if len(inf) < cfg.Categories {
		t.Errorf("only %d informative terms; labeling space too thin", len(inf))
	}
}

func TestLoadGAF(t *testing.T) {
	pe := NewPaperExample()
	names := make([]string, 22)
	for i := range names {
		names[i] = pe.Network.Name(i)
	}
	gaf := "!gaf-version: 2.2\n" +
		"SGD\tp1\tPROT1\t\tG04\tPMID:1\tIDA\t\tP\tname\t\tprotein\ttaxon:559292\t20070101\tSGD\t\t\n" +
		"SGD\tp1\tPROT1\tNOT\tG09\tPMID:1\tIDA\t\tP\tname\t\tprotein\ttaxon:559292\t20070101\tSGD\t\t\n" +
		"SGD\tp2\tPROT2\t\tG10\tPMID:1\tIDA\t\tC\tname\t\tprotein\ttaxon:559292\t20070101\tSGD\t\t\n" +
		"SGD\tnope\tNOPE\t\tG04\tPMID:1\tIDA\t\tP\tname\t\tprotein\ttaxon:559292\t20070101\tSGD\t\t\n"
	c, skipped, err := LoadGAF(strings.NewReader(gaf), pe.Ontology, names, GAFOptions{Aspect: 'P'})
	if err != nil {
		t.Fatal(err)
	}
	// Skipped: the NOT row, the aspect-C row, the unknown protein.
	if skipped != 3 {
		t.Errorf("skipped = %d, want 3", skipped)
	}
	if len(c.Terms(0)) != 1 || pe.Ontology.ID(int(c.Terms(0)[0])) != "G04" {
		t.Errorf("p1 terms = %v", c.Terms(0))
	}
	if c.Annotated(1) {
		t.Error("p2's component-aspect row should be filtered")
	}
	// Symbol matching.
	names[0] = "PROT1"
	c2, _, err := LoadGAF(strings.NewReader(gaf), pe.Ontology, names, GAFOptions{UseSymbol: true})
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Annotated(0) {
		t.Error("symbol matching failed")
	}
	// Malformed row.
	if _, _, err := LoadGAF(strings.NewReader("too\tfew\tcolumns\n"), pe.Ontology, names, GAFOptions{}); err == nil {
		t.Error("malformed GAF accepted")
	}
}

package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"lamofinder/internal/ontology"
)

// GAFOptions selects what to keep from a GO Annotation File.
type GAFOptions struct {
	// Aspect filters by GO branch: 'P' (process), 'F' (function),
	// 'C' (component), or 0 for all.
	Aspect byte
	// UseSymbol matches proteins by column 3 (DB object symbol) instead of
	// column 2 (DB object id).
	UseSymbol bool
}

// LoadGAF reads a GO Annotation File (GAF 2.x: 17 tab-separated columns,
// '!' comment lines) into a corpus over the given ontology and protein
// name table. Rows with a NOT qualifier, an unknown protein, or an unknown
// term are skipped and counted.
func LoadGAF(r io.Reader, o *ontology.Ontology, names []string, opt GAFOptions) (*ontology.Corpus, int, error) {
	index := make(map[string]int, len(names))
	for i, n := range names {
		index[n] = i
	}
	c := ontology.NewCorpus(o, len(names))
	skipped := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "!") {
			continue
		}
		cols := strings.Split(line, "\t")
		if len(cols) < 9 {
			return nil, skipped, fmt.Errorf("gaf: line %d: %d columns, want >= 9", lineNo, len(cols))
		}
		// Column layout (1-based): 2 = DB object id, 3 = symbol,
		// 4 = qualifier, 5 = GO id, 9 = aspect.
		if strings.Contains(cols[3], "NOT") {
			skipped++
			continue
		}
		if opt.Aspect != 0 && (len(cols[8]) == 0 || cols[8][0] != opt.Aspect) {
			skipped++
			continue
		}
		name := cols[1]
		if opt.UseSymbol {
			name = cols[2]
		}
		p, okP := index[name]
		t := o.Index(cols[4])
		if !okP || t < 0 {
			skipped++
			continue
		}
		c.Annotate(p, t)
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("gaf: %w", err)
	}
	return c, skipped, nil
}

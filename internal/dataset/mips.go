package dataset

import (
	"fmt"
	"math/rand"

	"lamofinder/internal/graph"
	"lamofinder/internal/ontology"
	"lamofinder/internal/predict"
)

// MIPSConfig sizes the synthetic MIPS-like function-prediction benchmark.
// Defaults match the paper's Figure-9 dataset: 1877 proteins, 2448 physical
// interactions, top 13 functional categories.
type MIPSConfig struct {
	Proteins   int
	Edges      int
	Categories int
	// AnnotatedFrac is the fraction of proteins with known categories.
	AnnotatedFrac float64
	// Homophily is the probability a background edge connects two proteins
	// of the same primary category — the signal that neighbor-based
	// baselines (NC, Chi2, MRF) exploit.
	Homophily float64
	// MotifCoverage is the fraction of proteins placed into planted motif
	// instances, whose positions carry fixed categories — the remote
	// topological signal only the labeled-motif method exploits.
	MotifCoverage float64
	// PositionNoise is the chance a planted protein's category deviates
	// from its position's category.
	PositionNoise float64
	// LeavesPerCategory controls the GO subtree width under each category.
	LeavesPerCategory int
	Seed              int64
}

// DefaultMIPSConfig mirrors the paper's evaluation scale.
func DefaultMIPSConfig() MIPSConfig {
	return MIPSConfig{
		Proteins:          1877,
		Edges:             2448,
		Categories:        13,
		AnnotatedFrac:     0.9,
		Homophily:         0.55,
		MotifCoverage:     0.5,
		PositionNoise:     0.12,
		LeavesPerCategory: 4,
		Seed:              99,
	}
}

// MIPS is the synthetic benchmark: a task for the predictors plus the GO
// corpus LaMoFinder labels against, and the planted ground truth.
type MIPS struct {
	Task *predict.Task
	// Ontology has one root, Categories subtree roots, and
	// LeavesPerCategory leaves under each; CategoryOf maps a term to its
	// category.
	Ontology *ontology.Ontology
	Corpus   *ontology.Corpus
	// CategoryTerm[c] is the subtree-root term index of category c.
	CategoryTerm []int
	Planted      []PlantedTemplate
}

// CategoryOf returns the category of a GO term (-1 for the root).
func (m *MIPS) CategoryOf(term int) int {
	for c, ct := range m.CategoryTerm {
		if m.Ontology.IsAncestorOrSelf(ct, term) {
			return c
		}
	}
	return -1
}

// randomTemplate returns a random connected pattern of the given size: a
// random spanning tree plus extra chords. Distinct planting rounds get
// distinct topologies with high probability, so their occurrence lists do
// not pool into one isomorphism class.
func randomTemplate(size int, rng *rand.Rand) *graph.Dense {
	d := graph.NewDense(size)
	for v := 1; v < size; v++ {
		d.AddEdge(v, rng.Intn(v))
	}
	extra := size/2 + 1
	for e := 0; e < extra; e++ {
		a, b := rng.Intn(size), rng.Intn(size)
		if a != b {
			d.AddEdge(a, b)
		}
	}
	return d
}

// NewMIPS builds the benchmark. Planted motif instances receive
// position-fixed categories; background proteins receive homophilous edges,
// so neighbor methods work but position methods work better on the planted
// half — the structural claim of the paper's Section 5.
//
// invariant: the generated category ontology is a two-level tree, so Build
// cannot cycle; a failure would be a bug in this generator.
func NewMIPS(cfg MIPSConfig) *MIPS {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Proteins
	g := graph.New(n)
	task := predict.NewTask(g, cfg.Categories)

	// Primary categories, skewed like functional catalogues.
	primary := make([]int, n)
	for p := range primary {
		// Zipf-ish skew over categories.
		c := int(float64(cfg.Categories) * rng.Float64() * rng.Float64())
		if c >= cfg.Categories {
			c = cfg.Categories - 1
		}
		primary[p] = c
	}

	// Plant motif instances over a dedicated protein range.
	budget := int(float64(n) * cfg.MotifCoverage)
	var planted []PlantedTemplate
	nextProtein := 0
	for nextProtein < budget {
		tpl := randomTemplate(4+rng.Intn(4), rng) // sizes 4..7
		nv := tpl.N()
		// Fixed per-position categories drawn from a two-category pool:
		// positions are deterministic (the labeled-motif signal) while
		// within-template edges still often connect same-category proteins
		// (so neighbor-based baselines keep partial signal, as in real
		// interactomes).
		pool2 := rng.Perm(cfg.Categories)[:2]
		cats := make([]int, nv)
		for v := range cats {
			cats[v] = pool2[rng.Intn(2)]
		}
		cats[0], cats[nv-1] = pool2[0], pool2[1] // both categories present
		// Position sub-pools so positions repeat across instances.
		perPos := 12
		poolBase := nextProtein
		need := nv * perPos
		if poolBase+need > budget {
			break
		}
		nextProtein += need
		pt := PlantedTemplate{Pattern: tpl.Clone()}
		instances := perPos * 3 // heavy position reuse across instances
		for inst := 0; inst < instances; inst++ {
			vs := make([]int32, nv)
			used := map[int]bool{}
			ok := true
			for v := 0; v < nv; v++ {
				placed := false
				for try := 0; try < 8; try++ {
					cand := poolBase + v*perPos + rng.Intn(perPos)
					if !used[cand] {
						used[cand] = true
						vs[v] = int32(cand)
						placed = true
						break
					}
				}
				if !placed {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for i := 0; i < nv; i++ {
				for j := i + 1; j < nv; j++ {
					if tpl.HasEdge(i, j) {
						g.AddEdge(int(vs[i]), int(vs[j]))
					}
				}
			}
			pt.Instances = append(pt.Instances, vs)
		}
		planted = append(planted, pt)
		// Assign position categories to the pool proteins.
		for v := 0; v < nv; v++ {
			for k := 0; k < perPos; k++ {
				p := poolBase + v*perPos + k
				if rng.Float64() < cfg.PositionNoise {
					primary[p] = rng.Intn(cfg.Categories)
				} else {
					primary[p] = cats[v]
				}
			}
		}
	}

	// Background edges with category homophily.
	for g.M() < cfg.Edges {
		u := rng.Intn(n)
		var v int
		if rng.Float64() < cfg.Homophily {
			// Find a same-category partner.
			v = rng.Intn(n)
			for try := 0; try < 20 && (v == u || primary[v] != primary[u]); try++ {
				v = rng.Intn(n)
			}
		} else {
			v = rng.Intn(n)
		}
		g.AddEdge(u, v)
	}

	// Task annotations: primary category, plus a secondary with prob 0.3.
	for p := 0; p < n; p++ {
		if rng.Float64() >= cfg.AnnotatedFrac {
			continue
		}
		task.Functions[p] = append(task.Functions[p], primary[p])
		if rng.Float64() < 0.3 {
			s := rng.Intn(cfg.Categories)
			if s != primary[p] {
				task.Functions[p] = append(task.Functions[p], s)
			}
		}
	}

	// GO ontology: root -> category terms -> leaves.
	b := ontology.NewBuilder()
	b.AddTerm("FC:root", "functional catalogue")
	catTerm := make([]int, cfg.Categories)
	leafOf := make([][]string, cfg.Categories)
	for c := 0; c < cfg.Categories; c++ {
		cid := fmt.Sprintf("FC:%02d", c)
		b.AddTerm(cid, fmt.Sprintf("category %d", c))
		b.AddRelation(cid, "FC:root", ontology.IsA)
		for l := 0; l < cfg.LeavesPerCategory; l++ {
			lid := fmt.Sprintf("FC:%02d.%d", c, l)
			b.AddTerm(lid, fmt.Sprintf("category %d leaf %d", c, l))
			b.AddRelation(lid, cid, ontology.IsA)
			leafOf[c] = append(leafOf[c], lid)
		}
	}
	o, err := b.Build()
	if err != nil {
		panic(err) // static construction; cannot cycle
	}
	for c := 0; c < cfg.Categories; c++ {
		catTerm[c] = o.Index(fmt.Sprintf("FC:%02d", c))
	}
	// Annotate mostly at specific leaves, partly at the category terms
	// directly. The category-level annotations push the informative-FC
	// frontier (>= 30 direct) to the category level, leaving the leaves
	// below the border as in real GO; LaMoFinder's schemes then have room
	// to generalize leaf -> category before the stopping rule fires.
	corpus := ontology.NewCorpus(o, n)
	for p := 0; p < n; p++ {
		for _, f := range task.Functions[p] {
			if rng.Float64() < 0.3 {
				corpus.Annotate(p, catTerm[f])
				continue
			}
			leaf := leafOf[f][rng.Intn(len(leafOf[f]))]
			corpus.Annotate(p, o.Index(leaf))
		}
	}

	for p := 0; p < n; p++ {
		g.SetName(p, fmt.Sprintf("M%04d", p))
	}
	return &MIPS{
		Task:         task,
		Ontology:     o,
		Corpus:       corpus,
		CategoryTerm: catTerm,
		Planted:      planted,
	}
}

// CategoryNames returns the display name of each functional category (the
// GO id of its subtree-root term), in category order — the FunctionNames
// an artifact built over the benchmark task wants.
func (m *MIPS) CategoryNames() []string {
	names := make([]string, len(m.CategoryTerm))
	for c, ct := range m.CategoryTerm {
		names[c] = m.Ontology.ID(ct)
	}
	return names
}

// Package dataset provides the data substrates of the reproduction: the
// paper's worked example (Figures 1-3, Tables 1-4) as exact fixtures, a
// synthetic BIND-like yeast interactome with planted motifs and GO
// annotations, a synthetic MIPS-like function-prediction benchmark, and
// simple text loaders for real edge-list and annotation files.
package dataset

import (
	"fmt"

	"lamofinder/internal/graph"
	"lamofinder/internal/motif"
	"lamofinder/internal/ontology"
)

// PaperExample bundles the paper's running example: the Figure-1 GO
// fragment, the Table-1 annotation counts, the Figure-2 motif g (a
// 4-cycle), the Figure-3 PPI network with four occurrences of g, and the
// Table-2 protein annotations.
type PaperExample struct {
	Ontology *ontology.Ontology
	// Direct holds the Table-1 "Num. of proteins annotated with t" counts
	// per term index.
	Direct []int
	// Network is the Figure-3 PPI graph over proteins p1..p22 (vertex i is
	// protein p(i+1)).
	Network *graph.Graph
	// Corpus carries the Table-2 direct annotations for p1..p16.
	Corpus *ontology.Corpus
	// Motif is the Figure-2 pattern g with the four Figure-3 occurrences
	// o1..o4 (vertex order v1, v2, v3, v4).
	Motif *motif.Motif
}

// NewPaperExample constructs the fixture. The DAG includes the G08 is-a G05
// edge required by the paper's text and Tables 3-4; see DESIGN.md for the
// resulting (documented) deviation in Table 1's G05 row.
//
// invariant: the fixture's hard-coded ontology is a valid DAG, so Build
// cannot fail; a failure would be a bug in this file's edge list.
func NewPaperExample() *PaperExample {
	b := ontology.NewBuilder()
	gid := func(i int) string { return fmt.Sprintf("G%02d", i) }
	for i := 1; i <= 11; i++ {
		b.AddTerm(gid(i), "")
	}
	rel := func(c, p int, r ontology.RelType) { b.AddRelation(gid(c), gid(p), r) }
	rel(2, 1, ontology.IsA)
	rel(3, 1, ontology.IsA)
	rel(4, 2, ontology.IsA)
	rel(5, 2, ontology.IsA)
	rel(5, 3, ontology.IsA)
	rel(6, 3, ontology.PartOf)
	rel(8, 3, ontology.IsA)
	rel(7, 4, ontology.IsA)
	rel(8, 4, ontology.IsA)
	rel(8, 5, ontology.IsA)
	rel(9, 5, ontology.IsA)
	rel(10, 5, ontology.IsA)
	rel(11, 5, ontology.IsA)
	rel(9, 6, ontology.PartOf)
	rel(10, 7, ontology.IsA)
	rel(10, 8, ontology.IsA)
	rel(11, 8, ontology.IsA)
	o, err := b.Build()
	if err != nil {
		panic(err) // static fixture; cannot fail
	}

	directByID := map[string]int{
		"G01": 0, "G02": 0, "G03": 20, "G04": 100, "G05": 70, "G06": 150,
		"G07": 10, "G08": 25, "G09": 100, "G10": 90, "G11": 20,
	}
	direct := make([]int, o.NumTerms())
	for id, c := range directByID {
		direct[o.Index(id)] = c
	}

	// Figure 3: proteins p1..p22 (vertices 0..21). The four occurrences of
	// the 4-cycle g are drawn with thick lines:
	//   o1 = p1-p2-p3-p4, o2 = p12-p9-p10-p11 (matched in Section 3),
	//   o3 = p7-p8-p18-p12 region, o4 = p15-p19-p20-p16 region.
	// Beyond the occurrence cycles the figure shows assorted thin edges; we
	// include a representative set to make the graph connected.
	g := graph.New(22)
	pv := func(i int) int { return i - 1 }
	edge := func(a, b int) { g.AddEdge(pv(a), pv(b)) }
	cycle := func(a, b, c, d int) {
		edge(a, b)
		edge(b, c)
		edge(c, d)
		edge(d, a)
	}
	cycle(1, 2, 3, 4)     // o1
	cycle(12, 9, 10, 11)  // o2
	cycle(7, 8, 18, 13)   // o3
	cycle(15, 19, 20, 16) // o4
	// thin background edges
	edge(5, 2)
	edge(5, 3)
	edge(6, 1)
	edge(6, 7)
	edge(4, 7)
	edge(8, 9)
	edge(14, 11)
	edge(14, 15)
	edge(17, 12)
	edge(18, 22)
	edge(21, 20)
	edge(22, 19)
	edge(13, 10)

	// Table 2 annotations for p1..p16.
	ann := map[int][]string{
		1:  {"G04", "G09", "G10"},
		2:  {"G10", "G03"},
		3:  {"G08"},
		4:  {"G09", "G07"},
		5:  {"G03"},
		6:  {"G10"},
		7:  {"G03"},
		8:  {"G05"},
		9:  {"G11", "G10"},
		10: {"G03", "G05", "G07"},
		11: {"G05"},
		12: {"G09"},
		13: {"G11"},
		14: {"G04", "G05"},
		15: {"G04"},
		16: {"G04", "G09"},
	}
	corpus := ontology.NewCorpus(o, 22)
	for p, terms := range ann {
		for _, id := range terms {
			corpus.Annotate(pv(p), o.Index(id))
		}
	}
	for i := 1; i <= 22; i++ {
		g.SetName(pv(i), fmt.Sprintf("p%d", i))
	}

	// Figure 2 motif: the 4-cycle v1-v2-v3-v4.
	pat := graph.NewDense(4)
	pat.AddEdge(0, 1)
	pat.AddEdge(1, 2)
	pat.AddEdge(2, 3)
	pat.AddEdge(3, 0)
	occ := func(a, b, c, d int) []int32 {
		return []int32{int32(pv(a)), int32(pv(b)), int32(pv(c)), int32(pv(d))}
	}
	m := &motif.Motif{
		Pattern: pat,
		Occurrences: [][]int32{
			occ(1, 2, 3, 4),     // o1: v1..v4 -> p1..p4
			occ(12, 9, 10, 11),  // o2, in the Section-3 matching order
			occ(7, 8, 18, 13),   // o3
			occ(15, 19, 20, 16), // o4
		},
		Frequency:  4,
		Uniqueness: 1,
	}
	return &PaperExample{Ontology: o, Direct: direct, Network: g, Corpus: corpus, Motif: m}
}

// Weights returns the Table-1 weights for the example.
func (pe *PaperExample) Weights() ontology.Weights {
	return pe.Ontology.ComputeWeights(pe.Direct)
}

// Term returns the index of term id, panicking on unknown ids (fixture use).
//
// invariant: id is one of the fixture's eleven G01..G11 terms — callers
// pass literals from the paper's tables, so an unknown id is a typo in
// test or experiment code.
func (pe *PaperExample) Term(id string) int {
	i := pe.Ontology.Index(id)
	if i < 0 {
		panic("paperexample: unknown term " + id)
	}
	return i
}

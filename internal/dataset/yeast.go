package dataset

import (
	"fmt"
	"math/rand"

	"lamofinder/internal/graph"
	"lamofinder/internal/ontology"
	"lamofinder/internal/randnet"
)

// YeastConfig sizes the synthetic BIND-like interactome. The defaults match
// the paper's Section 4 statistics: 4141 proteins, 7095 interactions, 86%
// GO coverage, three annotation branches.
type YeastConfig struct {
	Proteins int
	Edges    int
	// Coverage is the fraction of proteins with at least one GO annotation
	// (paper: 3554/4141).
	Coverage float64
	// TermsPerBranch sizes each synthetic GO branch.
	TermsPerBranch int
	// Templates describes the motif structures planted into the network;
	// nil selects DefaultYeastTemplates (a meso-scale-heavy mix).
	Templates []TemplateSpec
	Seed      int64
}

// TemplateSpec plants one repeated subgraph: a random connected pattern of
// the given size instantiated Instances times over a pool of PoolSize
// proteins (smaller pools create overlapping, complex-like occurrences).
// Every instance's position i proteins share GO annotations drawn from the
// same handful of terms, making the planted motif labelable.
type TemplateSpec struct {
	Size      int
	Edges     int // extra edges beyond the spanning tree
	Instances int
	PoolSize  int
}

// DefaultYeastConfig mirrors the paper's network scale.
func DefaultYeastConfig() YeastConfig {
	return YeastConfig{
		Proteins:       4141,
		Edges:          7095,
		Coverage:       0.858,
		TermsPerBranch: 400,
		Seed:           42,
	}
}

// DefaultYeastTemplates returns a planted-motif mix whose size distribution
// is meso-scale heavy, echoing the paper's Figure 6 (peak at sizes 15-17).
// Meso-scale templates are dense (complex-like): protein complexes are the
// biological source of meso-scale motifs, and their density is what makes
// them absent from degree-preserving randomizations.
func DefaultYeastTemplates() []TemplateSpec {
	var specs []TemplateSpec
	plan := []struct{ size, count int }{
		{4, 1}, {5, 1}, {6, 1}, {8, 1}, {10, 1}, {12, 2},
		{14, 2}, {15, 3}, {16, 4}, {17, 3}, {18, 2}, {20, 1},
	}
	for _, p := range plan {
		for c := 0; c < p.count; c++ {
			specs = append(specs, TemplateSpec{
				Size:      p.size,
				Edges:     p.size, // tree + size extra chords: complex-like density
				Instances: 35,
				PoolSize:  p.size * 3,
			})
		}
	}
	return specs
}

// Branch names the three GO annotation branches the paper labels with.
type Branch int

// The three GO domains.
const (
	Process Branch = iota
	Function
	Component
	numBranches
)

// String returns the branch's GO domain name.
func (b Branch) String() string {
	switch b {
	case Process:
		return "biological_process"
	case Function:
		return "molecular_function"
	default:
		return "cellular_component"
	}
}

// Yeast is a synthetic whole-genome interactome with planted, GO-annotated
// motif structure, substituting for the paper's BIND Y2H download.
type Yeast struct {
	Network    *graph.Graph
	Ontologies [3]*ontology.Ontology
	Corpora    [3]*ontology.Corpus
	// Planted records the ground-truth templates (pattern plus instances).
	Planted []PlantedTemplate
}

// PlantedTemplate is the ground truth for one TemplateSpec.
type PlantedTemplate struct {
	Pattern   *graph.Dense
	Instances [][]int32 // instance -> vertex per pattern position
}

// NewYeast builds the synthetic interactome: a duplication-divergence
// backbone, planted template instances, and three GO branches whose
// annotations are position-coherent on the planted instances and random
// elsewhere.
func NewYeast(cfg YeastConfig) *Yeast {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Templates == nil {
		cfg.Templates = DefaultYeastTemplates()
	}
	y := &Yeast{}

	// GO branches.
	for b := Branch(0); b < numBranches; b++ {
		oc := ontology.DefaultSyntheticConfig(branchPrefix(b), cfg.TermsPerBranch)
		y.Ontologies[b] = ontology.Synthetic(oc, rng)
	}

	// Backbone network at ~60% of the edge budget: trim a random subset of
	// duplication-divergence edges in one pass.
	g := randnet.DuplicationDivergence(cfg.Proteins, 0.35, 0.35, rng)
	if excess := g.M() - cfg.Edges*6/10; excess > 0 {
		es := g.Edges(nil)
		rng.Shuffle(len(es), func(i, j int) { es[i], es[j] = es[j], es[i] })
		for i := 0; i < excess; i++ {
			g.RemoveEdge(int(es[i][0]), int(es[i][1]))
		}
	}

	// Plant templates.
	for _, spec := range cfg.Templates {
		pt := plantTemplate(g, spec, rng)
		y.Planted = append(y.Planted, pt)
	}
	// Top up to the edge budget with random edges.
	for g.M() < cfg.Edges {
		g.AddEdge(rng.Intn(cfg.Proteins), rng.Intn(cfg.Proteins))
	}
	y.Network = g
	for p := 0; p < cfg.Proteins; p++ {
		g.SetName(p, fmt.Sprintf("Y%04d", p))
	}

	// Annotations: position-coherent terms on planted instances.
	for b := Branch(0); b < numBranches; b++ {
		o := y.Ontologies[b]
		c := ontology.NewCorpus(o, cfg.Proteins)
		leaves := o.Leaves()
		for _, pt := range y.Planted {
			// Each pattern position gets a small bag of leaf terms shared
			// by all instances.
			nv := pt.Pattern.N()
			bags := make([][]int, nv)
			for v := 0; v < nv; v++ {
				bag := make([]int, 2)
				for i := range bag {
					bag[i] = leaves[rng.Intn(len(leaves))]
				}
				bags[v] = bag
			}
			for _, inst := range pt.Instances {
				for v, p := range inst {
					if rng.Float64() < 0.1 {
						continue // annotation noise: missing label
					}
					c.Annotate(int(p), bags[v][rng.Intn(len(bags[v]))])
				}
			}
		}
		// Background annotations to reach target coverage. A share goes to
		// internal (mid-level) terms so the informative-FC frontier settles
		// above the specific leaf terms, as it does in real GO; otherwise
		// heavily used leaves become border informative FC themselves and
		// LaMoFinder's schemes freeze before any generalization.
		internal := make([]int, 0, o.NumTerms())
		for t := 1; t < o.NumTerms(); t++ {
			if len(o.Children(t)) > 0 {
				internal = append(internal, t)
			}
		}
		for p := 0; p < cfg.Proteins; p++ {
			if c.Annotated(p) {
				continue
			}
			if rng.Float64() < cfg.Coverage {
				k := 1 + rng.Intn(3)
				for i := 0; i < k; i++ {
					if len(internal) > 0 && rng.Float64() < 0.35 {
						c.Annotate(p, internal[rng.Intn(len(internal))])
					} else {
						c.Annotate(p, leaves[rng.Intn(len(leaves))])
					}
				}
			}
		}
		y.Corpora[b] = c
	}
	return y
}

func branchPrefix(b Branch) string {
	switch b {
	case Process:
		return "BP"
	case Function:
		return "MF"
	default:
		return "CC"
	}
}

// plantTemplate creates a random connected pattern and wires Instances
// embeddings of it into g over a bounded protein pool.
func plantTemplate(g *graph.Graph, spec TemplateSpec, rng *rand.Rand) PlantedTemplate {
	n := spec.Size
	pat := graph.NewDense(n)
	// Random spanning tree plus extra edges.
	for v := 1; v < n; v++ {
		pat.AddEdge(v, rng.Intn(v))
	}
	for e := 0; e < spec.Edges; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			pat.AddEdge(a, b)
		}
	}
	// Pool of proteins for this template, per position: position v draws
	// from its own sub-pool so corresponding vertices repeat across
	// instances (position-coherent, like subunits of a complex).
	poolSize := spec.PoolSize
	if poolSize < n {
		poolSize = n
	}
	pool := rng.Perm(g.N())[:poolSize]
	perPos := poolSize / n
	if perPos < 1 {
		perPos = 1
	}
	pt := PlantedTemplate{Pattern: pat.Clone()}
	for inst := 0; inst < spec.Instances; inst++ {
		used := map[int]bool{}
		vs := make([]int32, n)
		ok := true
		for v := 0; v < n; v++ {
			// Try a few draws from position v's sub-pool to avoid clashes.
			placed := false
			for try := 0; try < 8; try++ {
				cand := pool[(v*perPos+rng.Intn(perPos))%poolSize]
				if !used[cand] {
					used[cand] = true
					vs[v] = int32(cand)
					placed = true
					break
				}
			}
			if !placed {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if pat.HasEdge(i, j) {
					g.AddEdge(int(vs[i]), int(vs[j]))
				}
			}
		}
		pt.Instances = append(pt.Instances, vs)
	}
	return pt
}

package cluster

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// aggloModel is a randomized clustering problem shared by the heap driver
// and the brute-force reference: items carry random base similarities,
// merged clusters score by average linkage over their members, and clusters
// grow frozen once they exceed a member bound.
type aggloModel struct {
	base    [][]float64 // symmetric item-level similarities
	members map[int][]int
	next    int
	maxSize int
	minSim  float64
	merges  []int // merge log (ids), for cross-checking the sequence
}

func newAggloModel(rng *rand.Rand) *aggloModel {
	n := 4 + rng.Intn(20)
	base := make([][]float64, n)
	for i := range base {
		base[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := rng.Float64()
			// Force exact ties often, to exercise the deterministic
			// tie-breaking path: quantize to a coarse grid.
			if rng.Intn(2) == 0 {
				s = math.Round(s*4) / 4
			}
			base[i][j], base[j][i] = s, s
		}
	}
	m := &aggloModel{
		base:    base,
		members: map[int][]int{},
		next:    n,
		maxSize: 2 + rng.Intn(4),
		minSim:  rng.Float64() * 0.5,
	}
	for i := 0; i < n; i++ {
		m.members[i] = []int{i}
	}
	return m
}

func (m *aggloModel) ids() []int {
	ids := make([]int, len(m.base))
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func (m *aggloModel) sim(a, b int) float64 {
	sum := 0.0
	for _, x := range m.members[a] {
		for _, y := range m.members[b] {
			sum += m.base[x][y]
		}
	}
	return sum / float64(len(m.members[a])*len(m.members[b]))
}

func (m *aggloModel) merge(a, b int) int {
	id := m.next
	m.next++
	m.members[id] = append(append([]int(nil), m.members[a]...), m.members[b]...)
	m.merges = append(m.merges, a, b, id)
	return id
}

func (m *aggloModel) canMerge(a, b int) bool {
	return len(m.members[a]) < m.maxSize && len(m.members[b]) < m.maxSize
}

func (m *aggloModel) driver() *Agglomerative {
	return &Agglomerative{
		Sim:      m.sim,
		Merge:    m.merge,
		CanMerge: m.canMerge,
		MinSim:   m.minSim,
	}
}

// rescanRun is the brute-force O(k^2)-per-merge reference: every round it
// rescans all live admissible pairs in ascending (a, b) id order and takes
// the first strict maximum — exactly the heap driver's documented order
// (max similarity, ties to the smallest id pair).
func rescanRun(ag *Agglomerative, ids []int) []int {
	live := map[int]bool{}
	order := append([]int(nil), ids...)
	for _, id := range ids {
		live[id] = true
	}
	for {
		cur := make([]int, 0, len(live))
		for id := range live {
			cur = append(cur, id)
		}
		sort.Ints(cur)
		bestA, bestB := -1, -1
		best := math.Inf(-1)
		for i := 0; i < len(cur); i++ {
			for j := i + 1; j < len(cur); j++ {
				if ag.CanMerge != nil && !ag.CanMerge(cur[i], cur[j]) {
					continue
				}
				if s := ag.Sim(cur[i], cur[j]); s > best {
					best, bestA, bestB = s, cur[i], cur[j]
				}
			}
		}
		if bestA < 0 || best < ag.MinSim {
			break
		}
		merged := ag.Merge(bestA, bestB)
		delete(live, bestA)
		delete(live, bestB)
		live[merged] = true
		order = append(order, merged)
	}
	out := make([]int, 0, len(live))
	for _, id := range order {
		if live[id] {
			out = append(out, id)
			live[id] = false
		}
	}
	return out
}

// TestAgglomerativeHeapMatchesRescan drives the lazy-heap Run and the
// brute-force rescan over identical randomized inputs and requires the
// exact same merge sequence and survivors.
func TestAgglomerativeHeapMatchesRescan(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mHeap := newAggloModel(rng)
		// Rebuild the identical model for the reference run.
		mRef := newAggloModel(rand.New(rand.NewSource(seed)))

		gotOut := mHeap.driver().Run(mHeap.ids())
		wantOut := rescanRun(mRef.driver(), mRef.ids())

		if !reflect.DeepEqual(mHeap.merges, mRef.merges) {
			t.Logf("seed %d: merge sequence diverged\nheap:   %v\nrescan: %v",
				seed, mHeap.merges, mRef.merges)
			return false
		}
		if !reflect.DeepEqual(gotOut, wantOut) {
			t.Logf("seed %d: survivors diverged\nheap:   %v\nrescan: %v",
				seed, gotOut, wantOut)
			return false
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 80,
		Rand:     rand.New(rand.NewSource(1)),
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(r.Int63())
		},
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestAgglomerativeBatchSimEquivalent runs the same model with a BatchSim
// hook (as the parallel labeler does) and requires identical results to the
// per-pair Sim path.
func TestAgglomerativeBatchSimEquivalent(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		plain := newAggloModel(rand.New(rand.NewSource(seed)))
		batched := newAggloModel(rand.New(rand.NewSource(seed)))

		plainOut := plain.driver().Run(plain.ids())

		ag := batched.driver()
		ag.BatchSim = func(a int, bs []int, out []float64) {
			for i, b := range bs {
				out[i] = batched.sim(a, b)
			}
		}
		batchedOut := ag.Run(batched.ids())

		if !reflect.DeepEqual(plainOut, batchedOut) {
			t.Fatalf("seed %d: BatchSim path diverged: %v vs %v", seed, plainOut, batchedOut)
		}
		if !reflect.DeepEqual(plain.merges, batched.merges) {
			t.Fatalf("seed %d: merge sequences diverged: %v vs %v", seed, plain.merges, batched.merges)
		}
	}
}

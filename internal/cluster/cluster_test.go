package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxAssignmentSimple(t *testing.T) {
	s := [][]float64{
		{1, 5},
		{5, 1},
	}
	assign, total := MaxAssignment(s)
	if total != 10 {
		t.Fatalf("total = %v, want 10", total)
	}
	if assign[0] != 1 || assign[1] != 0 {
		t.Errorf("assign = %v", assign)
	}
}

func TestMaxAssignmentIdentityBest(t *testing.T) {
	s := [][]float64{
		{9, 1, 1},
		{1, 9, 1},
		{1, 1, 9},
	}
	assign, total := MaxAssignment(s)
	if total != 27 {
		t.Fatalf("total = %v", total)
	}
	for i, a := range assign {
		if a != i {
			t.Errorf("assign[%d] = %d", i, a)
		}
	}
}

func TestMaxAssignmentEmpty(t *testing.T) {
	assign, total := MaxAssignment(nil)
	if assign != nil || total != 0 {
		t.Errorf("empty: %v %v", assign, total)
	}
}

func TestMaxAssignmentMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		s := make([][]float64, n)
		for i := range s {
			s[i] = make([]float64, n)
			for j := range s[i] {
				s[i][j] = rng.Float64()
			}
		}
		_, got := MaxAssignment(s)
		want := bruteForceMax(s)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func bruteForceMax(s [][]float64) float64 {
	n := len(s)
	perm := make([]int, n)
	used := make([]bool, n)
	best := math.Inf(-1)
	var rec func(i int, sum float64)
	rec = func(i int, sum float64) {
		if i == n {
			if sum > best {
				best = sum
			}
			return
		}
		for j := 0; j < n; j++ {
			if !used[j] {
				used[j] = true
				perm[i] = j
				rec(i+1, sum+s[i][j])
				used[j] = false
			}
		}
	}
	rec(0, 0)
	return best
}

func TestHierarchicalLinkageTwoBlobs(t *testing.T) {
	// Items 0-2 mutually similar, 3-5 mutually similar, cross pairs not.
	sim := func(i, j int) float64 {
		if (i < 3) == (j < 3) {
			return 0.9
		}
		return 0.1
	}
	steps := HierarchicalLinkage(6, sim, AverageLinkage)
	if len(steps) != 5 {
		t.Fatalf("steps = %d, want 5", len(steps))
	}
	labels := CutDendrogram(6, steps, 0.5)
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("first blob split: %v", labels)
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Errorf("second blob split: %v", labels)
	}
	if labels[0] == labels[3] {
		t.Errorf("blobs merged: %v", labels)
	}
}

func TestLinkageVariants(t *testing.T) {
	sim := func(i, j int) float64 { return 1 / (1 + math.Abs(float64(i-j))) }
	for _, link := range []Linkage{AverageLinkage, SingleLinkage, CompleteLinkage} {
		steps := HierarchicalLinkage(4, sim, link)
		if len(steps) != 3 {
			t.Errorf("link %v: %d steps", link, len(steps))
		}
	}
}

func TestAgglomerativeDriver(t *testing.T) {
	// Clusters are sets of ints; merging unions them. ids index into store.
	store := map[int][]int{0: {0}, 1: {1}, 2: {2}, 3: {10}}
	sim := func(a, b int) float64 {
		// similarity = -min gap between members
		best := math.Inf(-1)
		for _, x := range store[a] {
			for _, y := range store[b] {
				if s := -math.Abs(float64(x - y)); s > best {
					best = s
				}
			}
		}
		return best
	}
	ag := &Agglomerative{
		Sim: sim,
		Merge: func(a, b int) int {
			store[a] = append(store[a], store[b]...)
			delete(store, b)
			return a
		},
		MinSim: -5,
	}
	out := ag.Run([]int{0, 1, 2, 3})
	if len(out) != 2 {
		t.Fatalf("clusters = %v (store %v), want 2", out, store)
	}
	// {0,1,2} merged; {10} frozen by MinSim.
	sizes := map[int]bool{}
	for _, id := range out {
		sizes[len(store[id])] = true
	}
	if !sizes[3] || !sizes[1] {
		t.Errorf("cluster sizes wrong: %v", store)
	}
}

func TestAgglomerativeVeto(t *testing.T) {
	ag := &Agglomerative{
		Sim:      func(a, b int) float64 { return 1 },
		Merge:    func(a, b int) int { return a },
		CanMerge: func(a, b int) bool { return false },
		MinSim:   0,
	}
	out := ag.Run([]int{1, 2, 3})
	if len(out) != 3 {
		t.Errorf("veto ignored: %v", out)
	}
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	// 1-D points: 0,1,2 and 100,101,102.
	pts := []float64{0, 1, 2, 100, 101, 102}
	dist := func(i, j int) float64 { return math.Abs(pts[i] - pts[j]) }
	rng := rand.New(rand.NewSource(9))
	assign := KMeans(6, 2, dist, 50, rng)
	if assign[0] != assign[1] || assign[1] != assign[2] {
		t.Errorf("blob 1 split: %v", assign)
	}
	if assign[3] != assign[4] || assign[4] != assign[5] {
		t.Errorf("blob 2 split: %v", assign)
	}
	if assign[0] == assign[3] {
		t.Errorf("blobs joined: %v", assign)
	}
}

func TestKMeansDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	if got := KMeans(0, 3, nil, 10, rng); len(got) != 0 {
		t.Error("n=0 should return empty")
	}
	assign := KMeans(3, 10, func(i, j int) float64 { return 1 }, 10, rng)
	if len(assign) != 3 {
		t.Errorf("assign len = %d", len(assign))
	}
}

func TestNeighborJoiningQuartet(t *testing.T) {
	// Additive tree: ((0,1),(2,3)) with internal edge 4.
	// d(0,1)=2, d(2,3)=2, cross = 1+4+1 = 6.
	d := [][]float64{
		{0, 2, 6, 6},
		{2, 0, 6, 6},
		{6, 6, 0, 2},
		{6, 6, 2, 0},
	}
	tr := NeighborJoining(d)
	if tr.NumLeaves != 4 {
		t.Fatalf("leaves = %d", tr.NumLeaves)
	}
	// The split {0,1} | {2,3} must exist: some internal node covers exactly
	// {0,1} or exactly {2,3}. (Rooting makes the other pair's siblinghood
	// arbitrary.)
	foundSplit := false
	for v := tr.NumLeaves; v < tr.NumNodes(); v++ {
		ls := tr.LeavesBelow(v)
		if len(ls) != 2 {
			continue
		}
		a, b := ls[0], ls[1]
		if a > b {
			a, b = b, a
		}
		if (a == 0 && b == 1) || (a == 2 && b == 3) {
			foundSplit = true
		}
	}
	if !foundSplit {
		t.Error("quartet split {0,1}|{2,3} not recovered")
	}
	leaves := tr.LeavesBelow(tr.Root)
	if len(leaves) != 4 {
		t.Errorf("root covers %d leaves", len(leaves))
	}
}

func TestNeighborJoiningTrivial(t *testing.T) {
	if tr := NeighborJoining(nil); tr.NumLeaves != 0 {
		t.Error("empty matrix")
	}
	tr := NeighborJoining([][]float64{{0}})
	if tr.NumLeaves != 1 || tr.Root != 0 {
		t.Errorf("singleton tree wrong: %+v", tr)
	}
	tr = NeighborJoining([][]float64{{0, 3}, {3, 0}})
	if tr.NumNodes() != 3 || len(tr.LeavesBelow(tr.Root)) != 2 {
		t.Errorf("pair tree wrong: %+v", tr)
	}
}

func TestNeighborJoiningAllLeavesReachable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		d := make([][]float64, n)
		for i := range d {
			d[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := rng.Float64() + 0.1
				d[i][j], d[j][i] = v, v
			}
		}
		tr := NeighborJoining(d)
		leaves := tr.LeavesBelow(tr.Root)
		if len(leaves) != n {
			return false
		}
		seen := make([]bool, n)
		for _, l := range leaves {
			if l < 0 || l >= n || seen[l] {
				return false
			}
			seen[l] = true
		}
		// Every non-root node has a parent; lengths non-negative.
		for v := 0; v < tr.NumNodes(); v++ {
			if v != tr.Root && tr.Parent[v] < 0 {
				return false
			}
			if tr.Length[v] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

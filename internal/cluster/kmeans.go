package cluster

import (
	"math"
	"math/rand"
)

// KMeans clusters n items into k groups over an abstract metric space given
// by dist(i, j). Because the space has no coordinates, it uses the k-medoids
// (PAM-style) variant: centers are items; each iteration reassigns items to
// the closest medoid and re-centers each cluster on its minimum-total-
// distance member. It returns the item->cluster assignment.
//
// The paper discusses k-means as the naive grouping strategy for occurrence
// clustering (Section 3.2) and rejects it because non-overlapping clusters
// miss valid labeling schemes; this implementation powers that comparison.
func KMeans(n, k int, dist func(i, j int) float64, maxIter int, rng *rand.Rand) []int {
	if k <= 0 || n == 0 {
		return make([]int, n)
	}
	if k > n {
		k = n
	}
	medoids := rng.Perm(n)[:k]
	assign := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bd := 0, math.Inf(1)
			for c, m := range medoids {
				if d := dist(i, m); d < bd {
					bd, best = d, c
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Re-center.
		for c := range medoids {
			bestM, bd := medoids[c], math.Inf(1)
			for i := 0; i < n; i++ {
				if assign[i] != c {
					continue
				}
				total := 0.0
				for j := 0; j < n; j++ {
					if assign[j] == c {
						total += dist(i, j)
					}
				}
				if total < bd {
					bd, bestM = total, i
				}
			}
			medoids[c] = bestM
		}
		if !changed {
			break
		}
	}
	return assign
}

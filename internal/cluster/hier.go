package cluster

import "math"

// Agglomerative performs generic bottom-up hierarchical clustering over n
// items. sim(a, b) returns the similarity between two current clusters,
// identified by their representative ids; merge(a, b) combines them and
// returns the id representing the merged cluster (one of a, b, or a fresh
// id the caller manages); stop(a, b, s) may veto a proposed merge.
//
// LaMoFinder uses this driver with occurrence-cluster ids, SO similarity,
// and the border-informative-FC stopping rule. The simpler linkage-based
// API below (HierarchicalLinkage) serves tests and generic uses.
type Agglomerative struct {
	// Sim returns the similarity of two live clusters.
	Sim func(a, b int) float64
	// Merge fuses cluster b into cluster a (or returns a fresh id).
	Merge func(a, b int) int
	// CanMerge, if non-nil, vetoes merges (e.g. a stopping criterion per
	// cluster). A cluster that can no longer merge is frozen.
	CanMerge func(a, b int) bool
	// MinSim stops the process when the best available pair's similarity
	// falls below this threshold.
	MinSim float64
}

// Run clusters the given live ids until no admissible pair remains, and
// returns the surviving cluster ids (frozen and merged alike).
func (ag *Agglomerative) Run(ids []int) []int {
	live := append([]int(nil), ids...)
	for len(live) > 1 {
		bi, bj := -1, -1
		best := math.Inf(-1)
		for i := 0; i < len(live); i++ {
			for j := i + 1; j < len(live); j++ {
				if ag.CanMerge != nil && !ag.CanMerge(live[i], live[j]) {
					continue
				}
				if s := ag.Sim(live[i], live[j]); s > best {
					best, bi, bj = s, i, j
				}
			}
		}
		if bi < 0 || best < ag.MinSim {
			break
		}
		merged := ag.Merge(live[bi], live[bj])
		// Remove bj first (higher index), then replace bi.
		live[bj] = live[len(live)-1]
		live = live[:len(live)-1]
		// bi may have been the swapped-in slot only if bi == len(live); it
		// cannot be, since bi < bj <= len(live).
		live[bi] = merged
	}
	return live
}

// Dendrogram records one merge step of HierarchicalLinkage.
type Dendrogram struct {
	A, B int     // merged cluster indices (0..n-1 leaves, then n, n+1, ...)
	Sim  float64 // similarity at which they merged
}

// Linkage selects how inter-cluster similarity is derived from item
// similarities in HierarchicalLinkage.
type Linkage int

// Supported linkage criteria.
const (
	AverageLinkage Linkage = iota
	SingleLinkage          // maximum similarity (single link)
	CompleteLinkage
)

// HierarchicalLinkage clusters n items given a pairwise similarity function,
// returning the full merge history (n-1 steps). Cluster k (k >= n) is the
// result of step k-n.
func HierarchicalLinkage(n int, sim func(i, j int) float64, link Linkage) []Dendrogram {
	if n == 0 {
		return nil
	}
	members := make([][]int, n, 2*n)
	for i := 0; i < n; i++ {
		members[i] = []int{i}
	}
	live := make([]int, n)
	for i := range live {
		live[i] = i
	}
	// Cache item-level similarities.
	simAt := make([][]float64, n)
	for i := 0; i < n; i++ {
		simAt[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i < j {
				simAt[i][j] = sim(i, j)
			}
		}
	}
	getSim := func(i, j int) float64 {
		if i > j {
			i, j = j, i
		}
		return simAt[i][j]
	}
	clusterSim := func(a, b int) float64 {
		switch link {
		case SingleLinkage:
			best := math.Inf(-1)
			for _, x := range members[a] {
				for _, y := range members[b] {
					if s := getSim(x, y); s > best {
						best = s
					}
				}
			}
			return best
		case CompleteLinkage:
			worst := math.Inf(1)
			for _, x := range members[a] {
				for _, y := range members[b] {
					if s := getSim(x, y); s < worst {
						worst = s
					}
				}
			}
			return worst
		default:
			sum := 0.0
			for _, x := range members[a] {
				for _, y := range members[b] {
					sum += getSim(x, y)
				}
			}
			return sum / float64(len(members[a])*len(members[b]))
		}
	}
	var steps []Dendrogram
	for len(live) > 1 {
		bi, bj := 0, 1
		best := math.Inf(-1)
		for i := 0; i < len(live); i++ {
			for j := i + 1; j < len(live); j++ {
				if s := clusterSim(live[i], live[j]); s > best {
					best, bi, bj = s, i, j
				}
			}
		}
		a, b := live[bi], live[bj]
		steps = append(steps, Dendrogram{A: a, B: b, Sim: best})
		merged := len(members)
		members = append(members, append(append([]int(nil), members[a]...), members[b]...))
		live[bj] = live[len(live)-1]
		live = live[:len(live)-1]
		live[bi] = merged
	}
	return steps
}

// CutDendrogram returns the cluster membership (item -> cluster id) obtained
// by replaying merges with similarity >= minSim.
func CutDendrogram(n int, steps []Dendrogram, minSim float64) []int {
	parent := make([]int, n+len(steps))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	next := n
	for _, st := range steps {
		if st.Sim >= minSim {
			parent[find(st.A)] = next
			parent[find(st.B)] = next
		}
		next++
	}
	out := make([]int, n)
	canon := map[int]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		id, ok := canon[r]
		if !ok {
			id = len(canon)
			canon[r] = id
		}
		out[i] = id
	}
	return out
}

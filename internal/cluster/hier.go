package cluster

import (
	"container/heap"
	"math"
)

// Agglomerative performs generic bottom-up hierarchical clustering over n
// items. Sim(a, b) returns the similarity between two current clusters,
// identified by their representative ids; Merge(a, b) combines them and
// returns the id representing the merged cluster (one of a, b, or a fresh
// id the caller manages); CanMerge may veto a proposed merge.
//
// LaMoFinder uses this driver with occurrence-cluster ids, SO similarity,
// and the border-informative-FC stopping rule. The simpler linkage-based
// API below (HierarchicalLinkage) serves tests and generic uses.
type Agglomerative struct {
	// Sim returns the similarity of two live clusters.
	Sim func(a, b int) float64
	// BatchSim, if non-nil, computes the similarity of a against each id in
	// bs, writing result i to out[i]. It replaces per-pair Sim calls when a
	// cluster's whole similarity row is needed at once, letting callers
	// fan the row out to a worker pool. BatchSim(a, bs, out) must be
	// equivalent to out[i] = Sim(a, bs[i]) for every i.
	BatchSim func(a int, bs []int, out []float64)
	// Merge fuses cluster b into cluster a (or returns a fresh id).
	Merge func(a, b int) int
	// CanMerge, if non-nil, vetoes merges (e.g. a stopping criterion per
	// cluster). It must be stable: its verdict for a given pair of live
	// ids may not change while both remain live.
	CanMerge func(a, b int) bool
	// MinSim stops the process when the best available pair's similarity
	// falls below this threshold.
	MinSim float64
}

// mergeCand is one candidate merge in the lazy max-heap. va and vb snapshot
// the version of each cluster when the candidate was scored; a candidate
// whose clusters have since merged (version bumped) is stale and is skipped
// when popped.
type mergeCand struct {
	sim    float64
	a, b   int // cluster ids, a < b
	va, vb uint32
}

// candHeap orders candidates by similarity (descending), breaking ties by
// the smaller id pair (a ascending, then b ascending) so the merge sequence
// is a deterministic function of the similarity structure alone.
type candHeap []mergeCand

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, j int) bool {
	if h[i].sim > h[j].sim {
		return true
	}
	if h[i].sim < h[j].sim {
		return false
	}
	if h[i].a != h[j].a {
		return h[i].a < h[j].a
	}
	return h[i].b < h[j].b
}
func (h candHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)   { *h = append(*h, x.(mergeCand)) }
func (h *candHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run clusters the given live ids until no admissible pair remains, and
// returns the surviving cluster ids (frozen and merged alike) in first-seen
// order: input ids first, then merged ids in creation order.
//
// The driver keeps a max-heap of candidate merges with lazy invalidation:
// each cluster id carries a version, candidates snapshot the versions of
// their two clusters, and a popped candidate is discarded when either
// version is out of date. A merge therefore costs one row of similarity
// computations (the merged cluster against the survivors) plus O(log h)
// heap maintenance, instead of the full O(k^2) rescan of the naive loop.
// Ties are broken by the smaller id pair, so the result is a deterministic
// function of the similarity values regardless of how rows are computed.
func (ag *Agglomerative) Run(ids []int) []int {
	batch := ag.BatchSim
	if batch == nil {
		batch = func(a int, bs []int, out []float64) {
			for i, b := range bs {
				out[i] = ag.Sim(a, b)
			}
		}
	}
	admissible := func(a, b int) bool {
		return ag.CanMerge == nil || ag.CanMerge(a, b)
	}

	ver := make(map[int]uint32, len(ids))
	order := make([]int, 0, len(ids))
	for _, id := range ids {
		ver[id] = 0
		order = append(order, id)
	}

	h := &candHeap{}
	// pushRow scores cluster a against every live peer in bs and pushes the
	// admissible candidates. Rows are scored through batch so callers can
	// parallelize them; results land in index-addressed slots, keeping the
	// candidate set independent of the evaluation schedule.
	pushRow := func(a int, bs []int) {
		if len(bs) == 0 {
			return
		}
		sims := make([]float64, len(bs))
		batch(a, bs, sims)
		for i, b := range bs {
			x, y := a, b
			if x > y {
				x, y = y, x
			}
			heap.Push(h, mergeCand{sim: sims[i], a: x, b: y, va: ver[x], vb: ver[y]})
		}
	}

	// Initial pairwise rows: each id against the admissible ids after it.
	for i, a := range ids {
		var bs []int
		for _, b := range ids[i+1:] {
			if admissible(a, b) {
				bs = append(bs, b)
			}
		}
		pushRow(a, bs)
	}

	nextVer := uint32(1)
	for h.Len() > 0 {
		c := heap.Pop(h).(mergeCand)
		va, aLive := ver[c.a]
		vb, bLive := ver[c.b]
		if !aLive || !bLive || va != c.va || vb != c.vb {
			continue // stale: one side has merged since this was scored
		}
		if c.sim < ag.MinSim {
			break // max-heap: nothing better remains
		}
		merged := ag.Merge(c.a, c.b)
		delete(ver, c.a)
		delete(ver, c.b)
		ver[merged] = nextVer // reused ids get a fresh version, stale entries die
		nextVer++
		order = append(order, merged)

		var bs []int
		for _, b := range order {
			if _, live := ver[b]; live && b != merged && admissible(merged, b) {
				bs = append(bs, b)
			}
		}
		pushRow(merged, bs)
	}

	out := make([]int, 0, len(ver))
	seen := make(map[int]bool, len(ver))
	for _, id := range order {
		if _, live := ver[id]; live && !seen[id] {
			out = append(out, id)
			seen[id] = true
		}
	}
	return out
}

// Dendrogram records one merge step of HierarchicalLinkage.
type Dendrogram struct {
	A, B int     // merged cluster indices (0..n-1 leaves, then n, n+1, ...)
	Sim  float64 // similarity at which they merged
}

// Linkage selects how inter-cluster similarity is derived from item
// similarities in HierarchicalLinkage.
type Linkage int

// Supported linkage criteria.
const (
	AverageLinkage Linkage = iota
	SingleLinkage          // maximum similarity (single link)
	CompleteLinkage
)

// HierarchicalLinkage clusters n items given a pairwise similarity function,
// returning the full merge history (n-1 steps). Cluster k (k >= n) is the
// result of step k-n.
func HierarchicalLinkage(n int, sim func(i, j int) float64, link Linkage) []Dendrogram {
	if n == 0 {
		return nil
	}
	members := make([][]int, n, 2*n)
	for i := 0; i < n; i++ {
		members[i] = []int{i}
	}
	live := make([]int, n)
	for i := range live {
		live[i] = i
	}
	// Cache item-level similarities.
	simAt := make([][]float64, n)
	for i := 0; i < n; i++ {
		simAt[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i < j {
				simAt[i][j] = sim(i, j)
			}
		}
	}
	getSim := func(i, j int) float64 {
		if i > j {
			i, j = j, i
		}
		return simAt[i][j]
	}
	clusterSim := func(a, b int) float64 {
		switch link {
		case SingleLinkage:
			best := math.Inf(-1)
			for _, x := range members[a] {
				for _, y := range members[b] {
					if s := getSim(x, y); s > best {
						best = s
					}
				}
			}
			return best
		case CompleteLinkage:
			worst := math.Inf(1)
			for _, x := range members[a] {
				for _, y := range members[b] {
					if s := getSim(x, y); s < worst {
						worst = s
					}
				}
			}
			return worst
		default:
			sum := 0.0
			for _, x := range members[a] {
				for _, y := range members[b] {
					sum += getSim(x, y)
				}
			}
			return sum / float64(len(members[a])*len(members[b]))
		}
	}
	var steps []Dendrogram
	for len(live) > 1 {
		bi, bj := 0, 1
		best := math.Inf(-1)
		for i := 0; i < len(live); i++ {
			for j := i + 1; j < len(live); j++ {
				if s := clusterSim(live[i], live[j]); s > best {
					best, bi, bj = s, i, j
				}
			}
		}
		a, b := live[bi], live[bj]
		steps = append(steps, Dendrogram{A: a, B: b, Sim: best})
		merged := len(members)
		members = append(members, append(append([]int(nil), members[a]...), members[b]...))
		live[bj] = live[len(live)-1]
		live = live[:len(live)-1]
		live[bi] = merged
	}
	return steps
}

// CutDendrogram returns the cluster membership (item -> cluster id) obtained
// by replaying merges with similarity >= minSim.
func CutDendrogram(n int, steps []Dendrogram, minSim float64) []int {
	parent := make([]int, n+len(steps))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	next := n
	for _, st := range steps {
		if st.Sim >= minSim {
			parent[find(st.A)] = next
			parent[find(st.B)] = next
		}
		next++
	}
	out := make([]int, n)
	canon := map[int]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		id, ok := canon[r]
		if !ok {
			id = len(canon)
			canon[r] = id
		}
		out[i] = id
	}
	return out
}

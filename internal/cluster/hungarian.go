// Package cluster provides the clustering and assignment substrates used by
// LaMoFinder and the prediction baselines: optimal assignment (Hungarian
// algorithm), agglomerative hierarchical clustering, k-means over abstract
// distance spaces, and BIONJ-style neighbor joining for PRODISTIN.
package cluster

import "math"

// MaxAssignment solves the maximum-score assignment problem for the square
// score matrix s (s[i][j] = score of pairing row i with column j) and
// returns the column assigned to each row plus the total score. It runs the
// O(n^3) Hungarian (Kuhn–Munkres) algorithm on negated scores.
func MaxAssignment(s [][]float64) (assign []int, total float64) {
	n := len(s)
	if n == 0 {
		return nil, 0
	}
	// Convert to min-cost with padding; classic potentials formulation.
	const inf = math.MaxFloat64 / 4
	a := make([][]float64, n+1)
	for i := 0; i <= n; i++ {
		a[i] = make([]float64, n+1)
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			a[i][j] = -s[i-1][j-1]
		}
	}
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row matched to column j
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0, delta, j1 := p[j0], inf, 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := a[i0][j] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	assign = make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
		}
	}
	for i := 0; i < n; i++ {
		total += s[i][assign[i]]
	}
	return assign, total
}

package cluster

import "math"

// Tree is a rooted binary tree produced by neighbor joining. Leaves are
// nodes 0..NumLeaves-1; internal nodes follow. The final join becomes the
// root.
type Tree struct {
	NumLeaves int
	Parent    []int   // -1 for the root
	Children  [][]int // empty for leaves
	Length    []float64
	Root      int
}

// NeighborJoining builds a BIONJ-style tree from the symmetric distance
// matrix d (PRODISTIN uses Czekanowski-Dice distances). It implements the
// classic NJ topology selection with BIONJ's variance-weighted distance
// update (Gascuel 1997); for n < 2 it returns a trivial tree.
func NeighborJoining(d [][]float64) *Tree {
	n := len(d)
	t := &Tree{NumLeaves: n}
	total := 2*n - 1
	if n == 0 {
		return t
	}
	if n == 1 {
		t.Parent = []int{-1}
		t.Children = [][]int{nil}
		t.Length = []float64{0}
		t.Root = 0
		return t
	}
	t.Parent = make([]int, total)
	t.Children = make([][]int, total)
	t.Length = make([]float64, total)
	for i := range t.Parent {
		t.Parent[i] = -1
	}

	// Working copies; active holds current cluster node ids.
	dist := make([][]float64, total)
	vari := make([][]float64, total)
	for i := 0; i < total; i++ {
		dist[i] = make([]float64, total)
		vari[i] = make([]float64, total)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dist[i][j] = d[i][j]
			vari[i][j] = d[i][j]
		}
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	next := n
	for len(active) > 2 {
		m := len(active)
		// Row sums.
		r := make([]float64, m)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				r[i] += dist[active[i]][active[j]]
			}
		}
		// Pick the pair minimizing the Q criterion; break ties toward the
		// smaller raw distance (keeps zero-distance groups together when
		// the matrix is degenerate).
		bi, bj := 0, 1
		best := math.Inf(1)
		bestD := math.Inf(1)
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				d := dist[active[i]][active[j]]
				q := float64(m-2)*d - r[i] - r[j]
				if q < best-1e-12 || (q < best+1e-12 && d < bestD) {
					best, bestD, bi, bj = q, d, i, j
				}
			}
		}
		a, b := active[bi], active[bj]
		dab := dist[a][b]
		// Branch lengths.
		la := 0.5*dab + (r[bi]-r[bj])/(2*float64(m-2))
		lb := dab - la
		if la < 0 {
			la, lb = 0, dab
		}
		if lb < 0 {
			lb, la = 0, dab
		}
		u := next
		next++
		t.Children[u] = []int{a, b}
		t.Parent[a], t.Parent[b] = u, u
		t.Length[a], t.Length[b] = la, lb
		// BIONJ lambda from variances.
		lambda := 0.5
		var sum float64
		for i := 0; i < m; i++ {
			c := active[i]
			if c == a || c == b {
				continue
			}
			sum += vari[b][c] - vari[a][c]
		}
		if m > 2 && dab > 0 {
			lambda = 0.5 + sum/(2*float64(m-2)*dab)
			if lambda < 0 {
				lambda = 0
			}
			if lambda > 1 {
				lambda = 1
			}
		}
		for i := 0; i < m; i++ {
			c := active[i]
			if c == a || c == b {
				continue
			}
			dist[u][c] = lambda*(dist[a][c]-la) + (1-lambda)*(dist[b][c]-lb)
			if dist[u][c] < 0 {
				dist[u][c] = 0
			}
			dist[c][u] = dist[u][c]
			vari[u][c] = lambda*vari[a][c] + (1-lambda)*vari[b][c] - lambda*(1-lambda)*vari[a][b]
			vari[c][u] = vari[u][c]
		}
		// Replace a,b with u in the active list.
		active[bj] = active[m-1]
		active = active[:m-1]
		active[bi] = u
	}
	// Join the final two under the root.
	a, b := active[0], active[1]
	root := next
	t.Children = append(t.Children[:root], t.Children[root:]...)
	t.Children[root] = []int{a, b}
	t.Parent[a], t.Parent[b] = root, root
	half := dist[a][b] / 2
	t.Length[a], t.Length[b] = half, half
	t.Root = root
	// Trim to used nodes.
	used := root + 1
	t.Parent = t.Parent[:used]
	t.Children = t.Children[:used]
	t.Length = t.Length[:used]
	return t
}

// LeavesBelow returns the leaf ids in the subtree rooted at node.
func (t *Tree) LeavesBelow(node int) []int {
	var out []int
	var walk func(v int)
	walk = func(v int) {
		if v < t.NumLeaves {
			out = append(out, v)
			return
		}
		for _, c := range t.Children[v] {
			walk(c)
		}
	}
	walk(node)
	return out
}

// NumNodes returns the total node count (leaves + internal).
func (t *Tree) NumNodes() int { return len(t.Parent) }

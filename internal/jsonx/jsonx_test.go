package jsonx

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// TestAppendStringMatchesStdlib pins the hand-rolled string escaper to
// encoding/json byte-for-byte, including the HTML escapes, control
// characters, astral-plane runes, invalid UTF-8, and the U+2028/U+2029
// JavaScript line separators Marshal special-cases.
func TestAppendStringMatchesStdlib(t *testing.T) {
	cases := []string{
		"",
		"p1",
		"YGR192C",
		`quote " backslash \ slash /`,
		"tab\tnewline\ncarriage\rmix",
		"control \x00 \x01 \x1f bytes",
		"html <b>&amp;</b> sensitive",
		"héllo wörld",
		"日本語テキスト",
		"emoji 🧬 protein",
		"line sep \u2028 and para sep \u2029",
		"invalid \xff\xfe utf8",
		"truncated \xc3",
		"mixed \xed\xa0\x80 surrogate bytes",
		"\x7f del byte",
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 64; i++ {
		b := make([]byte, rng.Intn(40))
		for j := range b {
			b[j] = byte(rng.Intn(256))
		}
		cases = append(cases, string(b))
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		got := AppendString(nil, s)
		if !bytes.Equal(got, want) {
			t.Errorf("string %q: got %s, stdlib %s", s, got, want)
		}
	}
}

// TestAppendFloatMatchesStdlib pins the float encoder to encoding/json
// across the format boundaries (1e-6, 1e21), negative zero, subnormals, and
// a seeded sweep of random magnitudes.
func TestAppendFloatMatchesStdlib(t *testing.T) {
	cases := []float64{
		0, 1, -1, 0.5, 2.0 / 3.0, 1.0 / 3.0, 0.1, 3.141592653589793,
		1e-6, 9.999999e-7, 1e-7, 1e20, 1e21, 9.99e20, 1.1e21, 1e-300, 5e-324,
		math.MaxFloat64, math.SmallestNonzeroFloat64,
		math.Copysign(0, -1), -2.5e-8, 6.02214076e23,
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		f := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(60)-30))
		cases = append(cases, f, -f)
	}
	for i := 0; i < 200; i++ {
		cases = append(cases, rng.Float64()) // the [0,1) score range served in practice
	}
	for _, f := range cases {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		got := AppendFloat(nil, f)
		if !bytes.Equal(got, want) {
			t.Errorf("float %v: got %s, stdlib %s", f, got, want)
		}
	}
}

// Package jsonx holds the zero-allocation JSON append encoders shared by
// the serving hot paths: the /v1/predict response encoder in internal/serve
// and the bulk-query row encoder in internal/query. Both paths render
// byte-for-byte what encoding/json.Marshal would produce for the same
// values, without reflection or intermediate buffers, so a pooled []byte
// can carry a whole response. TestAppendStringMatchesStdlib and
// TestAppendFloatMatchesStdlib pin the compatibility.
package jsonx

import (
	"math"
	"strconv"
	"unicode/utf8"
)

const hexDigits = "0123456789abcdef"

// safe marks the ASCII bytes encoding/json emits verbatim inside a string:
// printable, and none of '"', '\\', '<', '>', '&' (the HTML escapes
// Marshal applies by default).
var safe = func() (s [utf8.RuneSelf]bool) {
	for c := 0x20; c < utf8.RuneSelf; c++ {
		s[c] = true
	}
	for _, c := range []byte{'"', '\\', '<', '>', '&'} {
		s[c] = false
	}
	return s
}()

// AppendString appends s as a JSON string literal, escaping exactly as
// encoding/json.Marshal does (HTML escaping included).
//
// alloc-budget: 0
func AppendString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if safe[c] {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				// Control characters, plus the HTML-sensitive trio.
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			// Invalid UTF-8 byte: Marshal writes the replacement character
			// as an escape, not as raw bytes.
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// AppendFloat appends f exactly as encoding/json renders a float64:
// shortest round-trip form, 'f' format inside [1e-6, 1e21), 'e' outside,
// with the exponent's leading zero trimmed. NaN and infinities — which
// Marshal refuses outright — must never reach the encoder; every caller
// feeds it Eq.-5 scores normalized into [0, 1].
//
// alloc-budget: 0
func AppendFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

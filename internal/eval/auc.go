package eval

import (
	"sort"

	"lamofinder/internal/floats"
	"lamofinder/internal/predict"
)

// AUC returns, per function, the area under the ROC curve of the scorer
// over all annotated proteins (leave-one-out semantics are inherited from
// the scorer). Functions with no positive or no negative annotated protein
// get NaN-free 0.5 (uninformative). The second result is the macro average
// over functions with at least one positive.
func AUC(t *predict.Task, s predict.Scorer) (perFunction []float64, macro float64) {
	n := t.Network.N()
	type row struct {
		scores []float64
		truth  []bool
	}
	// Collect scores once per protein.
	var proteins []int
	for p := 0; p < n; p++ {
		if t.Annotated(p) {
			proteins = append(proteins, p)
		}
	}
	all := make([][]float64, len(proteins))
	for i, p := range proteins {
		all[i] = s.Scores(p)
	}
	perFunction = make([]float64, t.NumFunctions)
	used := 0
	for f := 0; f < t.NumFunctions; f++ {
		type sc struct {
			v   float64
			pos bool
		}
		rows := make([]sc, 0, len(proteins))
		pos, neg := 0, 0
		for i, p := range proteins {
			isPos := t.Has(p, f)
			if isPos {
				pos++
			} else {
				neg++
			}
			rows = append(rows, sc{all[i][f], isPos})
		}
		if pos == 0 || neg == 0 {
			perFunction[f] = 0.5
			continue
		}
		// AUC via the rank-sum formulation with midrank tie handling.
		sort.Slice(rows, func(a, b int) bool { return rows[a].v < rows[b].v })
		rankSum := 0.0
		i := 0
		for i < len(rows) {
			j := i
			for j < len(rows) && floats.Eq(rows[j].v, rows[i].v) {
				j++
			}
			mid := float64(i+j+1) / 2 // average 1-based rank of the tie group
			for k := i; k < j; k++ {
				if rows[k].pos {
					rankSum += mid
				}
			}
			i = j
		}
		auc := (rankSum - float64(pos)*float64(pos+1)/2) / (float64(pos) * float64(neg))
		perFunction[f] = auc
		macro += auc
		used++
	}
	if used > 0 {
		macro /= float64(used)
	} else {
		macro = 0.5
	}
	return perFunction, macro
}

// Package eval provides the leave-one-out evaluation harness behind the
// paper's Figure 9: each annotated protein's categories are hidden, every
// method ranks the candidate functions, and micro-averaged precision/recall
// are traced as the number of predicted functions per protein sweeps from 1
// to the category count.
package eval

import (
	"fmt"
	"sort"
	"strings"

	"lamofinder/internal/predict"
)

// PRPoint is one precision/recall operating point, at k predicted functions
// per protein.
type PRPoint struct {
	K         int
	Precision float64
	Recall    float64
}

// F1 returns the harmonic mean of precision and recall.
func (p PRPoint) F1() float64 {
	if p.Precision+p.Recall == 0 {
		return 0
	}
	return 2 * p.Precision * p.Recall / (p.Precision + p.Recall)
}

// Curve is a method's PR trace.
type Curve struct {
	Method string
	Points []PRPoint
}

// BestF1 returns the maximum F1 across the curve.
func (c Curve) BestF1() float64 {
	best := 0.0
	for _, p := range c.Points {
		if f := p.F1(); f > best {
			best = f
		}
	}
	return best
}

// AveragePrecision returns the mean precision across the curve's points, a
// single-number summary for ordering methods.
func (c Curve) AveragePrecision() float64 {
	if len(c.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range c.Points {
		sum += p.Precision
	}
	return sum / float64(len(c.Points))
}

// LeaveOneOut evaluates a scorer with the leave-one-out protocol: for every
// annotated protein the scorer ranks all functions (scorers never see the
// query's own annotations); for each k in 1..maxK the top-k predictions are
// compared with the true categories and micro-averaged. maxK <= 0 defaults
// to the task's function count.
func LeaveOneOut(t *predict.Task, s predict.Scorer, maxK int) Curve {
	if maxK <= 0 || maxK > t.NumFunctions {
		maxK = t.NumFunctions
	}
	// correct[k] = total true positives using top-(k+1) predictions.
	correct := make([]float64, maxK)
	predicted := make([]float64, maxK)
	totalTrue := 0.0
	order := make([]int, t.NumFunctions)
	for p := 0; p < t.Network.N(); p++ {
		if !t.Annotated(p) {
			continue
		}
		scores := s.Scores(p)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
		totalTrue += float64(len(t.Functions[p]))
		hits := 0.0
		for k := 0; k < maxK; k++ {
			if scores[order[k]] > 0 { // only positive-scored functions count as predictions
				predicted[k] += 1
				if t.Has(p, order[k]) {
					hits++
				}
			}
			correct[k] += hits
		}
	}
	// Accumulate predictions across k: predicted[k] currently counts the
	// new prediction at rank k; make it cumulative.
	for k := 1; k < maxK; k++ {
		predicted[k] += predicted[k-1]
	}
	curve := Curve{Method: s.Name()}
	for k := 0; k < maxK; k++ {
		pt := PRPoint{K: k + 1}
		if predicted[k] > 0 {
			pt.Precision = correct[k] / predicted[k]
		}
		if totalTrue > 0 {
			pt.Recall = correct[k] / totalTrue
		}
		curve.Points = append(curve.Points, pt)
	}
	return curve
}

// CompareAll runs LeaveOneOut for every scorer and returns the curves in
// input order.
func CompareAll(t *predict.Task, scorers []predict.Scorer, maxK int) []Curve {
	out := make([]Curve, 0, len(scorers))
	for _, s := range scorers {
		out = append(out, LeaveOneOut(t, s, maxK))
	}
	return out
}

// FormatCurves renders curves as an aligned text table (one row per k, one
// precision/recall column pair per method), the textual analogue of the
// paper's Figure 9.
func FormatCurves(curves []Curve) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s", "k")
	for _, c := range curves {
		fmt.Fprintf(&b, " | %-22s", c.Method)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-4s", "")
	for range curves {
		fmt.Fprintf(&b, " | %-10s %-11s", "precision", "recall")
	}
	b.WriteByte('\n')
	if len(curves) == 0 {
		return b.String()
	}
	for i := range curves[0].Points {
		fmt.Fprintf(&b, "%-4d", curves[0].Points[i].K)
		for _, c := range curves {
			p := c.Points[i]
			fmt.Fprintf(&b, " | %-10.3f %-11.3f", p.Precision, p.Recall)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

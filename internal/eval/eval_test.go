package eval

import (
	"math"
	"strings"
	"testing"

	"lamofinder/internal/graph"
	"lamofinder/internal/predict"
)

// oracle scores the true functions of each protein perfectly.
type oracle struct{ t *predict.Task }

func (o oracle) Name() string { return "oracle" }
func (o oracle) Scores(p int) []float64 {
	s := make([]float64, o.t.NumFunctions)
	for _, f := range o.t.Functions[p] {
		s[f] = 1
	}
	return s
}

// antiOracle scores everything except the true functions.
type antiOracle struct{ t *predict.Task }

func (o antiOracle) Name() string { return "anti" }
func (o antiOracle) Scores(p int) []float64 {
	s := make([]float64, o.t.NumFunctions)
	for f := range s {
		s[f] = 1
	}
	for _, fn := range o.t.Functions[p] {
		s[fn] = 0
	}
	return s
}

func singleFunctionTask() *predict.Task {
	g := graph.New(10)
	t := predict.NewTask(g, 4)
	for p := 0; p < 10; p++ {
		t.Functions[p] = []int{p % 4}
	}
	return t
}

func TestOraclePerfectAtK1(t *testing.T) {
	task := singleFunctionTask()
	c := LeaveOneOut(task, oracle{task}, 0)
	if c.Method != "oracle" {
		t.Errorf("method = %q", c.Method)
	}
	p1 := c.Points[0]
	if p1.K != 1 || p1.Precision != 1 || p1.Recall != 1 {
		t.Errorf("oracle at k=1: %+v", p1)
	}
	// Oracle only scores the true function > 0, so further ks add no
	// predictions; precision stays 1.
	last := c.Points[len(c.Points)-1]
	if last.Precision != 1 || last.Recall != 1 {
		t.Errorf("oracle at k=max: %+v", last)
	}
}

func TestAntiOracleZeroPrecision(t *testing.T) {
	task := singleFunctionTask()
	c := LeaveOneOut(task, antiOracle{task}, 0)
	p1 := c.Points[0]
	if p1.Precision != 0 || p1.Recall != 0 {
		t.Errorf("anti-oracle at k=1: %+v", p1)
	}
	// Zero-scored functions are never predicted, so even at k=4 the true
	// function (scored 0 by the anti-oracle) stays unpredicted.
	p4 := c.Points[3]
	if p4.Recall != 0 || p4.Precision != 0 {
		t.Errorf("anti-oracle at k=4: %+v", p4)
	}
}

func TestRecallMonotonicInK(t *testing.T) {
	task := singleFunctionTask()
	for _, s := range []predict.Scorer{oracle{task}, antiOracle{task}} {
		c := LeaveOneOut(task, s, 0)
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].Recall < c.Points[i-1].Recall-1e-12 {
				t.Errorf("%s: recall decreased at k=%d", s.Name(), i+1)
			}
		}
	}
}

func TestF1AndSummaries(t *testing.T) {
	p := PRPoint{K: 1, Precision: 0.5, Recall: 0.5}
	if math.Abs(p.F1()-0.5) > 1e-12 {
		t.Errorf("F1 = %v", p.F1())
	}
	if (PRPoint{}).F1() != 0 {
		t.Error("zero point F1 should be 0")
	}
	c := Curve{Method: "x", Points: []PRPoint{
		{K: 1, Precision: 1, Recall: 0.2},
		{K: 2, Precision: 0.5, Recall: 0.6},
	}}
	if got := c.AveragePrecision(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("AP = %v", got)
	}
	if c.BestF1() <= 0.3 {
		t.Errorf("BestF1 = %v", c.BestF1())
	}
	if (Curve{}).AveragePrecision() != 0 {
		t.Error("empty curve AP should be 0")
	}
}

func TestCompareAllAndFormat(t *testing.T) {
	task := singleFunctionTask()
	curves := CompareAll(task, []predict.Scorer{oracle{task}, antiOracle{task}}, 2)
	if len(curves) != 2 {
		t.Fatalf("curves = %d", len(curves))
	}
	txt := FormatCurves(curves)
	if !strings.Contains(txt, "oracle") || !strings.Contains(txt, "anti") {
		t.Errorf("format missing methods:\n%s", txt)
	}
	lines := strings.Split(strings.TrimSpace(txt), "\n")
	if len(lines) != 4 { // header, subheader, k=1, k=2
		t.Errorf("format has %d lines:\n%s", len(lines), txt)
	}
	if FormatCurves(nil) == "" {
		t.Error("empty format should still render headers")
	}
}

func TestUnannotatedProteinsSkipped(t *testing.T) {
	g := graph.New(4)
	task := predict.NewTask(g, 2)
	task.Functions[0] = []int{0}
	// proteins 1..3 unannotated
	c := LeaveOneOut(task, oracle{task}, 0)
	// total true = 1; recall at k=1 must be 1 (only protein 0 evaluated).
	if c.Points[0].Recall != 1 {
		t.Errorf("recall = %v", c.Points[0].Recall)
	}
}

func TestAUCOracleAndAnti(t *testing.T) {
	task := singleFunctionTask()
	per, macro := AUC(task, oracle{task})
	if macro < 0.999 {
		t.Errorf("oracle macro AUC = %v, want 1", macro)
	}
	for f, a := range per {
		if a < 0.999 {
			t.Errorf("oracle AUC[%d] = %v", f, a)
		}
	}
	_, macroAnti := AUC(task, antiOracle{task})
	if macroAnti > 0.001 {
		t.Errorf("anti-oracle macro AUC = %v, want 0", macroAnti)
	}
}

func TestAUCDegenerateFunction(t *testing.T) {
	g := graph.New(4)
	task := predict.NewTask(g, 2)
	task.Functions[0] = []int{0}
	task.Functions[1] = []int{0} // function 1 has no positives
	per, _ := AUC(task, oracle{task})
	if per[1] != 0.5 {
		t.Errorf("no-positive function AUC = %v, want 0.5", per[1])
	}
	// Function 0 has no negatives among annotated -> 0.5 too.
	if per[0] != 0.5 {
		t.Errorf("no-negative function AUC = %v, want 0.5", per[0])
	}
}

func TestAUCTiesMidrank(t *testing.T) {
	// Constant scorer: AUC must be exactly 0.5 by midrank handling.
	g := graph.New(6)
	task := predict.NewTask(g, 1)
	for p := 0; p < 6; p++ {
		if p < 3 {
			task.Functions[p] = []int{0}
		} else {
			task.Functions[p] = []int{} // unannotated... need negatives annotated
		}
	}
	// Make 3 negatives annotated with a dummy second function.
	task2 := predict.NewTask(g, 2)
	for p := 0; p < 6; p++ {
		if p < 3 {
			task2.Functions[p] = []int{0}
		} else {
			task2.Functions[p] = []int{1}
		}
	}
	per, _ := AUC(task2, constScorer{task2})
	if math.Abs(per[0]-0.5) > 1e-12 {
		t.Errorf("tied-score AUC = %v, want 0.5", per[0])
	}
}

type constScorer struct{ t *predict.Task }

func (c constScorer) Name() string { return "const" }
func (c constScorer) Scores(p int) []float64 {
	return make([]float64, c.t.NumFunctions)
}

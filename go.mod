module lamofinder

go 1.22

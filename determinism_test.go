package lamofinder

import (
	"bytes"
	"fmt"
	"testing"
)

// runPaperPipeline executes the full pipeline on the paper-example
// dataset — mine motifs, score uniqueness against randomized networks
// (the parallel code path), label with LaMoFinder, predict functions —
// and serializes every stage into one byte stream.
func runPaperPipeline() ([]byte, error) {
	pe := PaperExample()

	mineCfg := DefaultMineConfig()
	mineCfg.MinSize = 3
	mineCfg.MaxSize = 4
	mineCfg.MinFreq = 3
	motifs := FindMotifs(pe.Network, mineCfg)

	null := DefaultNullModel()
	null.Networks = 8
	ScoreUniqueness(pe.Network, motifs, null)

	labeler := NewLabeler(pe.Corpus, DefaultLabelConfig())
	var labeled []*LabeledMotif
	for _, m := range motifs {
		labeled = append(labeled, labeler.LabelMotif(m)...)
	}

	var buf bytes.Buffer
	if err := WriteMotifs(&buf, pe.Ontology, labeled); err != nil {
		return nil, err
	}

	task := NewTask(pe.Network, pe.Ontology.NumTerms())
	for p := 0; p < pe.Network.N(); p++ {
		for _, t := range pe.Corpus.Terms(p) {
			task.Functions[p] = append(task.Functions[p], int(t))
		}
	}
	scorer := NewLabeledMotifScorer(task, labeled)
	for p := 0; p < pe.Network.N(); p++ {
		fmt.Fprintf(&buf, "p%d:", p+1)
		for _, s := range scorer.Scores(p) {
			fmt.Fprintf(&buf, " %.12g", s)
		}
		fmt.Fprintln(&buf)
	}
	return buf.Bytes(), nil
}

// TestPipelineDeterminism is the regression gate behind the lamovet rules:
// two runs of the full pipeline (motif find -> uniqueness -> label ->
// predict) with the same seed must produce byte-identical serialized
// output, including the uniqueness stage that fans out one goroutine per
// randomized network.
func TestPipelineDeterminism(t *testing.T) {
	first, err := runPaperPipeline()
	if err != nil {
		t.Fatalf("pipeline run 1: %v", err)
	}
	if len(first) == 0 {
		t.Fatal("pipeline produced no output")
	}
	if !bytes.Contains(first, []byte("\n")) {
		t.Fatal("pipeline output not line-structured")
	}
	for run := 2; run <= 3; run++ {
		again, err := runPaperPipeline()
		if err != nil {
			t.Fatalf("pipeline run %d: %v", run, err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("pipeline output differs between run 1 and run %d:\nrun1 (%d bytes):\n%s\nrun%d (%d bytes):\n%s",
				run, len(first), truncate(first), run, len(again), truncate(again))
		}
	}
}

func truncate(b []byte) []byte {
	const max = 2000
	if len(b) <= max {
		return b
	}
	return append(append([]byte(nil), b[:max]...), []byte("...")...)
}

package lamofinder

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
)

// runPaperPipeline executes the full pipeline on the paper-example
// dataset — mine motifs, score uniqueness against randomized networks
// (the parallel code path), label with LaMoFinder, predict functions —
// and serializes every stage into one byte stream.
func runPaperPipeline() ([]byte, error) {
	pe := PaperExample()

	mineCfg := DefaultMineConfig()
	mineCfg.MinSize = 3
	mineCfg.MaxSize = 4
	mineCfg.MinFreq = 3
	motifs := FindMotifs(pe.Network, mineCfg)

	null := DefaultNullModel()
	null.Networks = 8
	ScoreUniqueness(pe.Network, motifs, null)

	labeler := NewLabeler(pe.Corpus, DefaultLabelConfig())
	var labeled []*LabeledMotif
	for _, m := range motifs {
		labeled = append(labeled, labeler.LabelMotif(m)...)
	}

	var buf bytes.Buffer
	if err := WriteMotifs(&buf, pe.Ontology, labeled); err != nil {
		return nil, err
	}

	task := NewTask(pe.Network, pe.Ontology.NumTerms())
	for p := 0; p < pe.Network.N(); p++ {
		for _, t := range pe.Corpus.Terms(p) {
			task.Functions[p] = append(task.Functions[p], int(t))
		}
	}
	scorer := NewLabeledMotifScorer(task, labeled)
	for p := 0; p < pe.Network.N(); p++ {
		fmt.Fprintf(&buf, "p%d:", p+1)
		for _, s := range scorer.Scores(p) {
			fmt.Fprintf(&buf, " %.12g", s)
		}
		fmt.Fprintln(&buf)
	}
	return buf.Bytes(), nil
}

// TestPipelineDeterminism is the regression gate behind the lamovet rules:
// two runs of the full pipeline (motif find -> uniqueness -> label ->
// predict) with the same seed must produce byte-identical serialized
// output, including the uniqueness stage that fans out one goroutine per
// randomized network.
func TestPipelineDeterminism(t *testing.T) {
	first, err := runPaperPipeline()
	if err != nil {
		t.Fatalf("pipeline run 1: %v", err)
	}
	if len(first) == 0 {
		t.Fatal("pipeline produced no output")
	}
	if !bytes.Contains(first, []byte("\n")) {
		t.Fatal("pipeline output not line-structured")
	}
	for run := 2; run <= 3; run++ {
		again, err := runPaperPipeline()
		if err != nil {
			t.Fatalf("pipeline run %d: %v", run, err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("pipeline output differs between run 1 and run %d:\nrun1 (%d bytes):\n%s\nrun%d (%d bytes):\n%s",
				run, len(first), truncate(first), run, len(again), truncate(again))
		}
	}
}

// TestPipelineDeterminismAcrossGOMAXPROCS cross-checks the worker pools:
// the serialized pipeline output must be byte-identical whether the
// runtime schedules everything on one processor or spreads the pools over
// four. Combined with TestPipelineDeterminism this certifies that no
// parallel stage lets the worker count leak into the result — the chunking
// is worker-independent and every merge is index-ordered.
func TestPipelineDeterminismAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	serial, err := runPaperPipeline()
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatalf("pipeline at GOMAXPROCS=1: %v", err)
	}

	prev = runtime.GOMAXPROCS(4)
	wide, err := runPaperPipeline()
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatalf("pipeline at GOMAXPROCS=4: %v", err)
	}

	if !bytes.Equal(serial, wide) {
		t.Fatalf("pipeline output depends on GOMAXPROCS:\nGOMAXPROCS=1 (%d bytes):\n%s\nGOMAXPROCS=4 (%d bytes):\n%s",
			len(serial), truncate(serial), len(wide), truncate(wide))
	}
}

// TestLabelParallelismKnobDeterminism pins the explicit Parallelism knob:
// the labeled-motif stream must be identical at worker counts 1, 2, and 5
// on the same mined motifs.
func TestLabelParallelismKnobDeterminism(t *testing.T) {
	pe := PaperExample()
	mineCfg := DefaultMineConfig()
	mineCfg.MinSize = 3
	mineCfg.MaxSize = 4
	mineCfg.MinFreq = 3
	motifs := FindMotifs(pe.Network, mineCfg)

	var want []byte
	for _, workers := range []int{1, 2, 5} {
		lcfg := DefaultLabelConfig()
		lcfg.Parallelism = workers
		labeler := NewLabeler(pe.Corpus, lcfg)
		labeled := labeler.LabelAll(motifs)
		var buf bytes.Buffer
		if err := WriteMotifs(&buf, pe.Ontology, labeled); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = buf.Bytes()
			if len(want) == 0 {
				t.Fatal("no labeled output")
			}
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("labeled output differs between Parallelism=1 and Parallelism=%d", workers)
		}
	}
}

func truncate(b []byte) []byte {
	const max = 2000
	if len(b) <= max {
		return b
	}
	return append(append([]byte(nil), b[:max]...), []byte("...")...)
}

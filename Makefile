# Tier-1 gates for the LaMoFinder reproduction. CI (.github/workflows/ci.yml)
# runs `make ci`; the individual targets exist for local iteration.

GO ?= go

# RACEPKGS are the concurrency-bearing packages: uniqueness scoring fans
# out one goroutine per randomized network (internal/motif/uniqueness.go)
# on top of the randnet generators.
RACEPKGS = ./internal/motif/... ./internal/randnet/...

.PHONY: all build vet lamovet lint test race ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lamovet is the project-specific analyzer suite guarding the determinism
# contract (see DESIGN.md "Static analysis gates"). It is stdlib-only and
# self-hosted: the repo must pass its own linter.
lamovet:
	$(GO) run ./cmd/lamovet ./...

lint: vet lamovet

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACEPKGS)

ci: build lint test race

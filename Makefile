# Tier-1 gates for the LaMoFinder reproduction. CI (.github/workflows/ci.yml)
# runs `make ci`; the individual targets exist for local iteration.

GO ?= go

# RACEPKGS are the concurrency-bearing packages: the par worker pool, the
# sharded similarity cache and parallel labeler (internal/label), the
# heap agglomerator driven by batch-parallel rows (internal/cluster), the
# chunked enumeration / per-network uniqueness fan-outs (internal/motif)
# on top of the randnet generators, the serving stack (request handlers
# over the LRU cache, singleflight group, and atomic counters) plus the
# artifact codec it loads, the fleet router (membership probes, hedged
# requests, rolling rollout against live replicas), the observability
# layer (lock-free histograms, the access-log ring and its drain
# goroutine), the analysis engine (parallel per-package rule execution
# over shared engine state), and the bulk-query engine (chunk-parallel
# scans writing index-addressed output slots and shared bitsets).
RACEPKGS = ./internal/par/... ./internal/label/... ./internal/cluster/... \
	./internal/motif/... ./internal/graph/... ./internal/ontology/... \
	./internal/dimotif/... ./internal/randnet/... \
	./internal/serve/... ./internal/fleet/... ./internal/artifact/... \
	./internal/obs/... ./internal/analysis/... ./internal/query/...

.PHONY: all build vet govet lamovet vet-json lint test race alloc alloc-build bench-smoke bench-json serve-smoke load-smoke fleet-smoke query-smoke trace-smoke ci

# The dated trajectory snapshot bench-json writes (and lamoload merges into).
BENCHFILE ?= BENCH_$(shell date +%Y-%m-%d).json

all: ci

build:
	$(GO) build ./...

# vet runs both the stock toolchain vet and the full 11-rule lamovet
# suite (seven per-package rules plus the interprocedural taintdet,
# lockorder, goroleak, and allocbudget).
vet: govet lamovet

govet:
	$(GO) vet ./...

# lamovet is the project-specific analyzer suite guarding the determinism
# contract (see DESIGN.md "Static analysis gates" and "Interprocedural
# analysis"). It is stdlib-only and self-hosted: the repo must pass its
# own linter.
lamovet:
	$(GO) run ./cmd/lamovet ./...

# vet-json emits the full suite's findings as a JSON array (empty when the
# repo is clean) — the machine-readable artifact CI uploads.
LAMOVET_JSON ?= lamovet.json
vet-json:
	$(GO) run ./cmd/lamovet -json ./... > $(LAMOVET_JSON) || (cat $(LAMOVET_JSON); exit 1)
	@echo "wrote $(LAMOVET_JSON)"

lint: vet

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACEPKGS)

# alloc is the allocation-budget gate: the indexed predict handler must
# stay 0 allocs/op bare AND with the full observability layer on (trace
# echo, per-route histograms, access logging through the ring).
alloc:
	$(GO) test -run 'TestInstrumentedPredictAllocs|TestPredictHotPathAllocs' -v ./internal/serve

# alloc-build is the build-side counterpart: the beam-miner benchmarks must
# stay within the checked-in allocs/op and bytes/op ceilings in
# ALLOC_BUDGET.json, so the mining hot path's CSR/bitset/arena memory
# layout (DESIGN.md §13) cannot silently regress back to per-subgraph maps.
alloc-build:
	$(GO) test -run TestMinerBeamAllocBudget -v .

# bench-smoke compiles and executes every benchmark exactly once — a CI
# guard against benchmark rot, not a measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# bench-json records a dated benchmark trajectory point (BENCH_<date>.json)
# for the before/after record in EXPERIMENTS.md: every package's
# microbenchmarks via cmd/benchjson, then serve latency percentiles merged
# in by a fixed-seed cmd/lamoload run against a live daemon.
bench-json:
	$(GO) run ./cmd/benchjson -time 3x -pkg ./... -out $(BENCHFILE)
	LAMOLOAD_MERGE_INTO=$(BENCHFILE) ./scripts/lamoload_smoke.sh

# serve-smoke exercises the daemon end to end: lamod build, lamod serve,
# lamoctl health/predict/metrics, SIGTERM drain.
serve-smoke:
	./scripts/serve_smoke.sh

# load-smoke exercises the serve hot path end to end: indexed build,
# fixed-seed lamoload in both loop modes, index-hit metrics, and the
# 0 allocs/op budget on the predict handler.
load-smoke:
	./scripts/lamoload_smoke.sh

# fleet-smoke exercises lamogate end to end: three reloadable replicas
# behind a gateway, health-gated routing under a lamoctl-driven load
# loop, a rolling rollout to a rebuilt artifact with zero failed
# requests, byte-identical served responses before and after, and a
# clean mixed-digest gauge once the fleet is uniform again.
fleet-smoke:
	./scripts/fleet_smoke.sh

# query-smoke exercises the bulk-query engine end to end: three canned
# plans through lamoctl query, row-count and known-score assertions,
# byte-identical offline (lamod query) vs served output, and the
# flag-built-plan / plan-file equivalence.
query-smoke:
	./scripts/query_smoke.sh

# trace-smoke exercises the span-tracing layer end to end: a traced
# predict's parse/rank/encode tree via lamoctl trace (JSON + -table),
# byte-deterministic query output alongside the -explain operator table,
# a trace-ID exemplar on /metrics, and one merged gateway+replica trace
# for a traced request through a 3-replica fleet.
trace-smoke:
	./scripts/trace_smoke.sh

ci: build lint test race alloc alloc-build bench-smoke serve-smoke load-smoke fleet-smoke query-smoke trace-smoke

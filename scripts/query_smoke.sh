#!/usr/bin/env bash
# query_smoke.sh — end-to-end gate for the bulk-query engine: build a quick
# indexed artifact, serve it, run three canned plans through lamoctl query
# (pinned top-k, filtered scan, grouped top-k), and assert the contracts
# that matter operationally: row_count matches the rows actually streamed,
# the pinned plan reproduces /v1/predict's predictions (including the
# exact score bytes), the offline `lamod query` path emits byte-identical
# output to the served endpoint, and a flag-built plan equals its -plan
# file twin. Run from anywhere inside the repo; CI runs it after the unit
# suites.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
addr="127.0.0.1:${QUERY_SMOKE_PORT:-8079}"
pid=""
cleanup() {
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
        kill -KILL "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build binaries"
go build -o "$workdir/lamod" ./cmd/lamod
go build -o "$workdir/lamoctl" ./cmd/lamoctl

echo "== build indexed artifact"
"$workdir/lamod" build -quick -out "$workdir/model.lamoart" -note "query smoke" \
    | tee "$workdir/build.log"
grep -q "indexed (format v4)" "$workdir/build.log"

echo "== serve on $addr"
"$workdir/lamod" serve -artifact "$workdir/model.lamoart" -addr "$addr" \
    >"$workdir/lamod.log" 2>&1 &
pid=$!

up=0
for _ in $(seq 1 100); do
    if "$workdir/lamoctl" health -server "http://$addr" >/dev/null 2>&1; then
        up=1
        break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        break
    fi
    sleep 0.1
done
if [[ "$up" != 1 ]]; then
    echo "daemon never became healthy" >&2
    cat "$workdir/lamod.log" >&2
    exit 1
fi

echo "== canned plans"
cat >"$workdir/plan_pinned.json" <<'EOF'
{"filter":[{"field":"protein","op":"in","names":["M0000"]}],"topk":5,"project":["protein","function","name","score"]}
EOF
cat >"$workdir/plan_scan.json" <<'EOF'
{"filter":[{"field":"degree","op":"ge","value":1}],"topk":1}
EOF
cat >"$workdir/plan_group.json" <<'EOF'
{"group_by":"category","topk":2}
EOF

for plan in pinned scan group; do
    "$workdir/lamoctl" query -server "http://$addr" \
        -plan "$workdir/plan_$plan.json" >"$workdir/$plan.json"
done

echo "== row counts are consistent and non-empty"
python3 - "$workdir" <<'EOF'
import json, sys
workdir = sys.argv[1]
for plan in ("pinned", "scan", "group"):
    with open(f"{workdir}/{plan}.json") as f:
        res = json.load(f)
    rows = res["rows"]
    if res["row_count"] != len(rows) or not rows:
        raise SystemExit(f"{plan}: row_count={res['row_count']} but {len(rows)} rows streamed")
    width = len(res["columns"])
    for row in rows:
        if len(row) != width:
            raise SystemExit(f"{plan}: row {row} does not match columns {res['columns']}")
print("row counts OK")
EOF

echo "== pinned plan reproduces /v1/predict (known scores included)"
"$workdir/lamoctl" predict -server "http://$addr" -protein M0000 -k 5 \
    >"$workdir/predict.json"
python3 - "$workdir" <<'EOF'
import json, sys
workdir = sys.argv[1]
with open(f"{workdir}/predict.json") as f:
    preds = json.load(f)["results"][0]["predictions"]
with open(f"{workdir}/pinned.json") as f:
    rows = json.load(f)["rows"]
if len(preds) != len(rows):
    raise SystemExit(f"predict returned {len(preds)} predictions, query {len(rows)} rows")
for pd, row in zip(preds, rows):
    got = [row[0], row[1], row[2], row[3]]
    want = ["M0000", pd["function"], pd["name"], pd["score"]]
    if got != want:
        raise SystemExit(f"row {got} != prediction {want}")
print(f"pinned plan matches predict across {len(rows)} rows, top score {preds[0]['score']}")
EOF
# The known score must appear verbatim in the raw response bytes too — the
# engine's float encoder and predict's must agree digit for digit.
top_score="$(python3 -c "import json;print(json.load(open('$workdir/predict.json'))['results'][0]['predictions'][0]['score'])")"
grep -q -- "$top_score" "$workdir/pinned.json"

echo "== offline lamod query is byte-identical to the served endpoint"
for plan in pinned scan group; do
    "$workdir/lamod" query -artifact "$workdir/model.lamoart" \
        -plan "$workdir/plan_$plan.json" >"$workdir/offline_$plan.json"
    cmp "$workdir/$plan.json" "$workdir/offline_$plan.json"
done

echo "== flag-built plan equals its -plan file twin"
"$workdir/lamoctl" query -server "http://$addr" -proteins M0000 -topk 5 \
    -project protein,function,name,score >"$workdir/flagbuilt.json"
cmp "$workdir/pinned.json" "$workdir/flagbuilt.json"

echo "== -table rendering"
"$workdir/lamoctl" query -server "http://$addr" -plan "$workdir/plan_group.json" \
    -table >"$workdir/table.txt"
grep -q "FUNCTION" "$workdir/table.txt"
grep -q "^artifact=" "$workdir/table.txt"

echo "== query metrics recorded"
"$workdir/lamoctl" metrics -server "http://$addr" >"$workdir/metrics.json"
grep -q '"queries":' "$workdir/metrics.json"
if grep -q '"queries":0,' "$workdir/metrics.json"; then
    echo "daemon recorded no bulk queries" >&2
    exit 1
fi
grep -q '"query_latency":' "$workdir/metrics.json"

echo "== graceful shutdown"
kill -TERM "$pid"
for _ in $(seq 1 100); do
    if ! kill -0 "$pid" 2>/dev/null; then
        break
    fi
    sleep 0.1
done
wait "$pid" || { echo "daemon exited non-zero" >&2; cat "$workdir/lamod.log" >&2; exit 1; }
pid=""

echo "query smoke OK"

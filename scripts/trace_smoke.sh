#!/usr/bin/env bash
# trace_smoke.sh — end-to-end gate for the span-tracing layer: a traced
# /v1/predict against a single daemon must land in the trace store with
# its parse/rank/encode child spans and surface through `lamoctl trace`
# (JSON and -table tree); bulk-query output must stay byte-deterministic
# with tracing available while `lamoctl query -explain` returns the
# per-operator table; /metrics must carry an OpenMetrics trace-ID
# exemplar under -exemplars; and a traced request through a 3-replica
# fleet must yield ONE trace — gateway routing root, per-attempt upstream
# spans, and the owning replica's handler spans merged in by ID. Run from
# anywhere inside the repo; CI runs it after the unit suites.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
addr="127.0.0.1:${TRACE_SMOKE_PORT:-8085}"
base_port="${TRACE_SMOKE_REPLICA_PORT:-8086}"
gw_addr="127.0.0.1:${TRACE_SMOKE_GATEWAY_PORT:-8072}"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill -KILL "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

wait_healthy() {
    local server="$1" log="$2"
    local up=0
    for _ in $(seq 1 100); do
        if "$workdir/lamoctl" health -server "$server" >/dev/null 2>&1; then
            up=1
            break
        fi
        sleep 0.1
    done
    if [[ "$up" != 1 ]]; then
        echo "$server never became healthy" >&2
        cat "$log" >&2
        exit 1
    fi
}

echo "== build binaries"
go build -o "$workdir/lamod" ./cmd/lamod
go build -o "$workdir/lamoctl" ./cmd/lamoctl

echo "== build artifact"
"$workdir/lamod" build -quick -out "$workdir/model.lamoart" -note "trace smoke" >/dev/null

echo "== serve with exemplars on $addr"
"$workdir/lamod" serve -artifact "$workdir/model.lamoart" -addr "$addr" \
    -exemplars -log-level warn >"$workdir/lamod.log" 2>&1 &
pids+=("$!")
wait_healthy "http://$addr" "$workdir/lamod.log"

echo "== traced predict lands in the trace store"
# A valid client X-Request-Id forces sampling; the daemon echoes it and
# the same ID then fetches the span tree.
"$workdir/lamoctl" predict -server "http://$addr" -trace smoke-predict-1 \
    -protein M0000 -k 5 >/dev/null
"$workdir/lamoctl" trace smoke-predict-1 -server "http://$addr" \
    | tee "$workdir/trace.json"
grep -q '"trace":"smoke-predict-1"' "$workdir/trace.json"
for span in predict parse rank encode; do
    grep -q "\"name\":\"$span\"" "$workdir/trace.json"
done

echo "== trace -table renders the span tree"
"$workdir/lamoctl" trace smoke-predict-1 -table -server "http://$addr" \
    | tee "$workdir/trace.txt"
grep -q '^trace=smoke-predict-1 spans=' "$workdir/trace.txt"
# Children are indented under the predict root.
grep -Eq '^  (parse|rank|encode)' "$workdir/trace.txt"

echo "== trace listing includes the request"
"$workdir/lamoctl" trace -table -server "http://$addr" | tee "$workdir/list.txt"
grep -q 'smoke-predict-1' "$workdir/list.txt"

echo "== query bytes are deterministic; -explain adds the operator table"
"$workdir/lamoctl" query -server "http://$addr" -topk 3 >"$workdir/q1.json"
"$workdir/lamoctl" query -server "http://$addr" -topk 3 >"$workdir/q2.json"
cmp "$workdir/q1.json" "$workdir/q2.json"
if grep -q '"explain"' "$workdir/q1.json"; then
    echo "plain query response unexpectedly carries an explain field" >&2
    exit 1
fi
"$workdir/lamoctl" query -explain -server "http://$addr" -topk 3 \
    | tee "$workdir/explain.txt"
grep -q '^OP' "$workdir/explain.txt"
grep -q '^scan' "$workdir/explain.txt"
grep -q '^emit' "$workdir/explain.txt"
grep -q 'wall_us=' "$workdir/explain.txt"

echo "== /metrics carries a trace-ID exemplar"
"$workdir/lamoctl" prom -server "http://$addr" >"$workdir/prom.txt"
grep -q '# {trace_id="smoke-predict-1"}' "$workdir/prom.txt"

echo "== start 3 replicas + gateway"
replica_addrs=()
for i in 0 1 2; do
    raddr="127.0.0.1:$((base_port + i))"
    replica_addrs+=("$raddr")
    "$workdir/lamod" serve -artifact "$workdir/model.lamoart" -addr "$raddr" \
        -log-level warn >"$workdir/replica$i.log" 2>&1 &
    pids+=("$!")
done
for i in 0 1 2; do
    wait_healthy "http://${replica_addrs[$i]}" "$workdir/replica$i.log"
done
replicas_csv="$(IFS=,; echo "${replica_addrs[*]}")"
"$workdir/lamod" gateway -replicas "$replicas_csv" -addr "$gw_addr" \
    -log-level warn >"$workdir/gateway.log" 2>&1 &
pids+=("$!")
wait_healthy "http://$gw_addr" "$workdir/gateway.log"

echo "== one traced request, one cross-process trace"
"$workdir/lamoctl" predict -server "http://$gw_addr" -trace fleet-trace-1 \
    -protein M0000 -k 5 >/dev/null
"$workdir/lamoctl" trace fleet-trace-1 -server "http://$gw_addr" \
    | tee "$workdir/gw_trace.json"
grep -q '"trace":"fleet-trace-1"' "$workdir/gw_trace.json"
# Gateway side: routing root + the attempt span naming the upstream.
grep -q '"name":"predict"' "$workdir/gw_trace.json"
grep -q '"name":"attempt"' "$workdir/gw_trace.json"
# Replica side, merged by ID: the owning replica's handler spans nest
# under the gateway attempt via remote_parent.
grep -q '"replicas":\[{"replica":"http://' "$workdir/gw_trace.json"
grep -q '"remote_parent":' "$workdir/gw_trace.json"
grep -q '"name":"rank"' "$workdir/gw_trace.json"

echo "== gateway trace -table splices the replica tree under its attempt"
"$workdir/lamoctl" trace fleet-trace-1 -table -server "http://$gw_addr" \
    | tee "$workdir/gw_trace.txt"
grep -q '^trace=fleet-trace-1 spans=' "$workdir/gw_trace.txt"
grep -q 'attempt' "$workdir/gw_trace.txt"
grep -q 'replica http://' "$workdir/gw_trace.txt"
grep -q 'rank' "$workdir/gw_trace.txt"

echo "trace smoke OK"

#!/usr/bin/env bash
# serve_smoke.sh — end-to-end gate for the lamod daemon: build a quick
# artifact (checking the build-stage trace), serve it, hit /v1/healthz and
# /v1/predict through lamoctl, verify trace-ID propagation end to end
# (response header plus access-log line), line-validate the Prometheus
# exposition, and verify the process drains cleanly on SIGTERM. Run from
# anywhere inside the repo; CI runs it after the unit suites.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
addr="127.0.0.1:${SERVE_SMOKE_PORT:-8077}"
pid=""
cleanup() {
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
        kill -KILL "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build binaries"
go build -o "$workdir/lamod" ./cmd/lamod
go build -o "$workdir/lamoctl" ./cmd/lamoctl

echo "== build artifact"
"$workdir/lamod" build -quick -out "$workdir/model.lamoart" -note "serve smoke" -stats \
    | tee "$workdir/build.log"
# -stats prints the stage table; the same trace must ride in the artifact.
grep -q "census" "$workdir/build.log"
# The census and labeling stages must report a nonzero wall time: a "0s"
# wall means the stage recorder lost the measurement (or the stage was
# silently skipped), which would blind every build-side perf comparison.
for stage in census labeling; do
    wall="$(awk -v s="$stage" '$1 == s { print $2 }' "$workdir/build.log")"
    if [[ -z "$wall" ]]; then
        echo "build -stats table is missing the $stage stage" >&2
        exit 1
    fi
    if [[ "$wall" == "0s" ]]; then
        echo "build -stats reports zero wall time for $stage" >&2
        exit 1
    fi
done
"$workdir/lamoctl" inspect -artifact "$workdir/model.lamoart" | tee "$workdir/inspect.json"
grep -q '"build_stats"' "$workdir/inspect.json"
grep -q '"stage": "ranking"' "$workdir/inspect.json"

echo "== serve on $addr"
"$workdir/lamod" serve -artifact "$workdir/model.lamoart" -addr "$addr" \
    >"$workdir/lamod.log" 2>&1 &
pid=$!

up=0
for _ in $(seq 1 100); do
    if "$workdir/lamoctl" health -server "http://$addr" >/dev/null 2>&1; then
        up=1
        break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        break
    fi
    sleep 0.1
done
if [[ "$up" != 1 ]]; then
    echo "daemon never became healthy" >&2
    cat "$workdir/lamod.log" >&2
    exit 1
fi

echo "== healthz"
"$workdir/lamoctl" health -server "http://$addr" | tee "$workdir/healthz.json"
grep -q '"status":"ok"' "$workdir/healthz.json"

echo "== predict"
"$workdir/lamoctl" predict -server "http://$addr" -protein M0000 -k 5 \
    | tee "$workdir/predict.json"
grep -q '"protein":"M0000"' "$workdir/predict.json"

echo "== trace id echo"
# lamoctl predict -trace fails with exit 1 unless the daemon echoes the ID
# in the X-Request-Id response header.
"$workdir/lamoctl" predict -server "http://$addr" -protein M0000 -k 5 \
    -trace smoke-trace-42 >/dev/null

# The same query twice must return identical bytes (cache hit or not).
"$workdir/lamoctl" predict -server "http://$addr" -protein M0000 -k 5 \
    >"$workdir/predict2.json"
cmp "$workdir/predict.json" "$workdir/predict2.json"

echo "== metrics"
"$workdir/lamoctl" metrics -server "http://$addr"
"$workdir/lamoctl" metrics -ratios -server "http://$addr" | tee "$workdir/ratios.txt"
grep -q '^requests=' "$workdir/ratios.txt"
grep -q 'predict_p50_us=' "$workdir/ratios.txt"

echo "== prometheus exposition"
"$workdir/lamoctl" prom -server "http://$addr" >"$workdir/prom.txt"
# Every line must be a comment or `name{labels} value` — one malformed
# line breaks a real scraper, so one malformed line fails the smoke.
if grep -Evq '^(#|[a-z_]+(\{[^}]*\})? [0-9.e+-]+$)' "$workdir/prom.txt"; then
    echo "malformed Prometheus exposition line(s):" >&2
    grep -Ev '^(#|[a-z_]+(\{[^}]*\})? [0-9.e+-]+$)' "$workdir/prom.txt" >&2
    exit 1
fi
grep -q '^lamod_requests_total ' "$workdir/prom.txt"
grep -q 'lamod_request_duration_seconds_bucket{route="predict",le="+Inf"}' "$workdir/prom.txt"

echo "== graceful shutdown"
kill -TERM "$pid"
for _ in $(seq 1 100); do
    if ! kill -0 "$pid" 2>/dev/null; then
        break
    fi
    sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
    echo "daemon ignored SIGTERM" >&2
    exit 1
fi
wait "$pid" || { echo "daemon exited non-zero" >&2; cat "$workdir/lamod.log" >&2; exit 1; }
pid=""
grep -q "shut down cleanly" "$workdir/lamod.log"

echo "== access log carries the trace id"
# Shutdown flushes the access-log ring, so the smoke trace ID must appear
# in a structured stderr line by now.
grep -q '"trace":"smoke-trace-42"' "$workdir/lamod.log"
grep -q '"msg":"access"' "$workdir/lamod.log"

echo "serve smoke OK"

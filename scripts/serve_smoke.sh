#!/usr/bin/env bash
# serve_smoke.sh — end-to-end gate for the lamod daemon: build a quick
# artifact, serve it, hit /v1/healthz and /v1/predict through lamoctl, and
# verify the process drains cleanly on SIGTERM. Run from anywhere inside
# the repo; CI runs it after the unit suites.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
addr="127.0.0.1:${SERVE_SMOKE_PORT:-8077}"
pid=""
cleanup() {
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
        kill -KILL "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build binaries"
go build -o "$workdir/lamod" ./cmd/lamod
go build -o "$workdir/lamoctl" ./cmd/lamoctl

echo "== build artifact"
"$workdir/lamod" build -quick -out "$workdir/model.lamoart" -note "serve smoke"
"$workdir/lamoctl" inspect -artifact "$workdir/model.lamoart"

echo "== serve on $addr"
"$workdir/lamod" serve -artifact "$workdir/model.lamoart" -addr "$addr" \
    >"$workdir/lamod.log" 2>&1 &
pid=$!

up=0
for _ in $(seq 1 100); do
    if "$workdir/lamoctl" health -server "http://$addr" >/dev/null 2>&1; then
        up=1
        break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        break
    fi
    sleep 0.1
done
if [[ "$up" != 1 ]]; then
    echo "daemon never became healthy" >&2
    cat "$workdir/lamod.log" >&2
    exit 1
fi

echo "== healthz"
"$workdir/lamoctl" health -server "http://$addr" | tee "$workdir/healthz.json"
grep -q '"status":"ok"' "$workdir/healthz.json"

echo "== predict"
"$workdir/lamoctl" predict -server "http://$addr" -protein M0000 -k 5 \
    | tee "$workdir/predict.json"
grep -q '"protein":"M0000"' "$workdir/predict.json"

# The same query twice must return identical bytes (cache hit or not).
"$workdir/lamoctl" predict -server "http://$addr" -protein M0000 -k 5 \
    >"$workdir/predict2.json"
cmp "$workdir/predict.json" "$workdir/predict2.json"

echo "== metrics"
"$workdir/lamoctl" metrics -server "http://$addr"

echo "== graceful shutdown"
kill -TERM "$pid"
for _ in $(seq 1 100); do
    if ! kill -0 "$pid" 2>/dev/null; then
        break
    fi
    sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
    echo "daemon ignored SIGTERM" >&2
    exit 1
fi
wait "$pid" || { echo "daemon exited non-zero" >&2; cat "$workdir/lamod.log" >&2; exit 1; }
pid=""
grep -q "shut down cleanly" "$workdir/lamod.log"

echo "serve smoke OK"

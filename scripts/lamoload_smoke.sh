#!/usr/bin/env bash
# lamoload_smoke.sh — end-to-end gate for the serve hot path: build a quick
# indexed artifact, serve it, drive it with fixed-seed lamoload runs in both
# loop modes, and assert the handler's allocation budget (0 allocs/op on
# index hits). With LAMOLOAD_MERGE_INTO=<BENCH_*.json> the closed-loop
# latency results are also appended to that trajectory snapshot, which is
# how `make bench-json` lands serve latency beside the microbenchmarks.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
addr="127.0.0.1:${LAMOLOAD_SMOKE_PORT:-8078}"
pid=""
cleanup() {
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
        kill -KILL "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build binaries"
go build -o "$workdir/lamod" ./cmd/lamod
go build -o "$workdir/lamoctl" ./cmd/lamoctl
go build -o "$workdir/lamoload" ./cmd/lamoload

echo "== build indexed artifact"
"$workdir/lamod" build -quick -out "$workdir/model.lamoart" -note "lamoload smoke" \
    | tee "$workdir/build.log"
grep -q "indexed (format v4)" "$workdir/build.log"

echo "== serve on $addr"
"$workdir/lamod" serve -artifact "$workdir/model.lamoart" -addr "$addr" \
    >"$workdir/lamod.log" 2>&1 &
pid=$!

up=0
for _ in $(seq 1 100); do
    if "$workdir/lamoctl" health -server "http://$addr" >/dev/null 2>&1; then
        up=1
        break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        break
    fi
    sleep 0.1
done
if [[ "$up" != 1 ]]; then
    echo "daemon never became healthy" >&2
    cat "$workdir/lamod.log" >&2
    exit 1
fi
grep -q "index scoring" "$workdir/lamod.log"

echo "== closed-loop load (fixed seed)"
"$workdir/lamoload" -artifact "$workdir/model.lamoart" -server "http://$addr" \
    -n 300 -c 4 -batch 2 -k 5 -seed 1 -out "$workdir/load.json"
grep -q '"name": "LoadPredict/p50"' "$workdir/load.json"
grep -q '"name": "LoadPredict/p99"' "$workdir/load.json"
grep -q '"name": "LoadPredict/throughput"' "$workdir/load.json"
# The daemon-side percentiles scraped from /v1/metrics ride in the same
# snapshot, so the trajectory records both sides of the wire.
grep -q '"name": "LoadPredict/daemon_p50"' "$workdir/load.json"
grep -q '"name": "LoadPredict/daemon_p99"' "$workdir/load.json"

echo "== bulk-query load (fixed seed)"
"$workdir/lamoload" -artifact "$workdir/model.lamoart" -server "http://$addr" \
    -workload query -n 100 -c 4 -batch 2 -k 5 -seed 1 -out "$workdir/query.json"
grep -q '"name": "LoadQuery/query_p50"' "$workdir/query.json"
grep -q '"name": "LoadQuery/query_p99"' "$workdir/query.json"
# rows/sec rides as its reciprocal, ns per streamed row.
grep -q '"name": "LoadQuery/query_ns_per_row"' "$workdir/query.json"
grep -q '"name": "LoadQuery/daemon_p50"' "$workdir/query.json"

echo "== open-loop load (fixed seed)"
"$workdir/lamoload" -artifact "$workdir/model.lamoart" -server "http://$addr" \
    -n 100 -rate 500 -k 5 -seed 2 -name OpenLoop -out "$workdir/open.json"
grep -q '"name": "OpenLoop/p99"' "$workdir/open.json"

echo "== served proteins still answered from the index"
"$workdir/lamoctl" metrics -server "http://$addr" | tee "$workdir/metrics.json"
grep -q '"index_hits":' "$workdir/metrics.json"
if grep -q '"index_hits":0,' "$workdir/metrics.json"; then
    echo "daemon served the load without index hits" >&2
    exit 1
fi

if [[ -n "${LAMOLOAD_MERGE_INTO:-}" ]]; then
    echo "== merge latency results into $LAMOLOAD_MERGE_INTO"
    "$workdir/lamoload" -artifact "$workdir/model.lamoart" -server "http://$addr" \
        -n 500 -c 4 -batch 2 -k 5 -seed 1 -merge-into "$LAMOLOAD_MERGE_INTO"
    # The bulk-query percentiles and rows/sec land in the same trajectory
    # snapshot, so query throughput is baseline-diffable like everything
    # else in BENCH_*.json.
    "$workdir/lamoload" -artifact "$workdir/model.lamoart" -server "http://$addr" \
        -workload query -n 200 -c 4 -batch 2 -k 5 -seed 1 \
        -merge-into "$LAMOLOAD_MERGE_INTO"
fi

echo "== graceful shutdown"
kill -TERM "$pid"
for _ in $(seq 1 100); do
    if ! kill -0 "$pid" 2>/dev/null; then
        break
    fi
    sleep 0.1
done
wait "$pid" || { echo "daemon exited non-zero" >&2; cat "$workdir/lamod.log" >&2; exit 1; }
pid=""

echo "== allocation budget (index hot path, bare and instrumented)"
go test -run '^$' -bench 'BenchmarkHandlerPredict(Indexed|Instrumented)$' -benchtime 200x -benchmem \
    ./internal/serve | tee "$workdir/bench.log"
grep 'BenchmarkHandlerPredictIndexed' "$workdir/bench.log" \
    | grep -qE '[[:space:]]0 allocs/op' \
    || { echo "index hot path exceeds the 0 allocs/op budget" >&2; exit 1; }
# Full observability on — trace echo, histograms, access logging — must
# not cost a single allocation either.
grep 'BenchmarkHandlerPredictInstrumented' "$workdir/bench.log" \
    | grep -qE '[[:space:]]0 allocs/op' \
    || { echo "instrumented hot path exceeds the 0 allocs/op budget" >&2; exit 1; }

echo "lamoload smoke OK"

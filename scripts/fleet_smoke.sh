#!/usr/bin/env bash
# fleet_smoke.sh — end-to-end gate for lamogate: three reloadable lamod
# replicas behind a `lamod gateway` router, health-gated routing under a
# continuous lamoctl-driven load loop, a rolling rollout to a rebuilt
# artifact with zero failed requests, byte-identical served responses
# before and after the swap, a clean lamod_fleet_mixed_digest gauge once
# the fleet is uniform again, and graceful SIGTERM drains all around. Run
# from anywhere inside the repo; CI runs it after the unit suites.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
base_port="${FLEET_SMOKE_PORT:-8081}"
gw_addr="127.0.0.1:${FLEET_SMOKE_GATEWAY_PORT:-8070}"
pids=()
cleanup() {
    touch "$workdir/stopload" 2>/dev/null || true
    for pid in "${pids[@]:-}"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill -KILL "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build binaries"
go build -o "$workdir/lamod" ./cmd/lamod
go build -o "$workdir/lamoctl" ./cmd/lamoctl

echo "== build artifacts"
# Two builds of the SAME model configuration: the artifact digest covers
# the model payload (not build timing), so both files carry one digest and
# the rollout must end with byte-identical served responses. The rollout
# protocol itself is exercised replica by replica either way.
"$workdir/lamod" build -quick -out "$workdir/model_a.lamoart" -note "fleet smoke" >/dev/null
"$workdir/lamod" build -quick -out "$workdir/model_b.lamoart" -note "fleet smoke" >/dev/null
digest="$("$workdir/lamoctl" inspect -artifact "$workdir/model_a.lamoart" \
    | sed -n 's/.*"artifact": "\([^"]*\)".*/\1/p')"
digest_b="$("$workdir/lamoctl" inspect -artifact "$workdir/model_b.lamoart" \
    | sed -n 's/.*"artifact": "\([^"]*\)".*/\1/p')"
if [[ -z "$digest" || "$digest" != "$digest_b" ]]; then
    echo "same-config rebuild changed the digest: $digest vs $digest_b" >&2
    exit 1
fi

echo "== start 3 replicas"
replica_addrs=()
for i in 0 1 2; do
    addr="127.0.0.1:$((base_port + i))"
    replica_addrs+=("$addr")
    "$workdir/lamod" serve -artifact "$workdir/model_a.lamoart" -addr "$addr" \
        -reload -reload-dir "$workdir" -log-level warn \
        >"$workdir/replica$i.log" 2>&1 &
    pids+=("$!")
done
for i in 0 1 2; do
    up=0
    for _ in $(seq 1 100); do
        if "$workdir/lamoctl" health -server "http://${replica_addrs[$i]}" >/dev/null 2>&1; then
            up=1
            break
        fi
        sleep 0.1
    done
    if [[ "$up" != 1 ]]; then
        echo "replica $i never became healthy" >&2
        cat "$workdir/replica$i.log" >&2
        exit 1
    fi
done

echo "== start gateway on $gw_addr"
replicas_csv="$(IFS=,; echo "${replica_addrs[*]}")"
"$workdir/lamod" gateway -replicas "$replicas_csv" -addr "$gw_addr" -log-level warn \
    >"$workdir/gateway.log" 2>&1 &
gw_pid=$!
pids+=("$gw_pid")
up=0
for _ in $(seq 1 100); do
    if "$workdir/lamoctl" health -server "http://$gw_addr" >/dev/null 2>&1; then
        up=1
        break
    fi
    sleep 0.1
done
if [[ "$up" != 1 ]]; then
    echo "gateway never became healthy" >&2
    cat "$workdir/gateway.log" >&2
    exit 1
fi

echo "== fleet health carries the artifact digest"
"$workdir/lamoctl" health -server "http://$gw_addr" | tee "$workdir/gw_health.txt"
grep -q "^artifact=$digest " "$workdir/gw_health.txt"
grep -q '"ready":3' "$workdir/gw_health.txt"

echo "== fleet membership table"
"$workdir/lamoctl" fleet -table -server "http://$gw_addr" | tee "$workdir/fleet.txt"
[[ "$(grep -c ' ready ' "$workdir/fleet.txt")" == 3 ]]
grep -q "^artifact=$digest mixed_digest=false" "$workdir/fleet.txt"

echo "== predict through the gateway"
"$workdir/lamoctl" predict -server "http://$gw_addr" -protein M0000 -k 5 \
    | tee "$workdir/before.json"
grep -q '"protein":"M0000"' "$workdir/before.json"
grep -q "$digest" "$workdir/before.json"

echo "== rolling rollout under load"
# A continuous lamoctl-driven load loop across several proteins; every
# request during the rollout must succeed.
: >"$workdir/load_ok"
: >"$workdir/load_fail"
(
    i=0
    proteins=(M0000 M0007 M0042 M0100 M0311)
    while [[ ! -f "$workdir/stopload" ]]; do
        p="${proteins[$((i % 5))]}"
        if "$workdir/lamoctl" predict -server "http://$gw_addr" -protein "$p" -k 5 \
            >/dev/null 2>>"$workdir/load_fail.log"; then
            echo ok >>"$workdir/load_ok"
        else
            echo fail >>"$workdir/load_fail"
        fi
        i=$((i + 1))
    done
) &
load_pid=$!

"$workdir/lamoctl" rollout -server "http://$gw_addr" \
    -artifact "$workdir/model_b.lamoart" -digest "$digest" \
    | tee "$workdir/rollout.json"
grep -q "\"artifact\":\"$digest\"" "$workdir/rollout.json"
# One step per replica, each confirming the target digest.
[[ "$(grep -o "\"replica\":" "$workdir/rollout.json" | wc -l)" == 3 ]]

touch "$workdir/stopload"
wait "$load_pid"
if [[ -s "$workdir/load_fail" ]]; then
    echo "$(wc -l <"$workdir/load_fail") predict requests failed during the rollout:" >&2
    cat "$workdir/load_fail.log" >&2
    exit 1
fi
if [[ ! -s "$workdir/load_ok" ]]; then
    echo "the load loop issued no successful requests; the rollout ran unobserved" >&2
    exit 1
fi
echo "load loop: $(wc -l <"$workdir/load_ok") requests, 0 failures"

echo "== served bytes identical before and after the swap"
"$workdir/lamoctl" predict -server "http://$gw_addr" -protein M0000 -k 5 \
    >"$workdir/after.json"
cmp "$workdir/before.json" "$workdir/after.json"

echo "== fleet metrics after the rollout"
"$workdir/lamoctl" prom -server "http://$gw_addr" >"$workdir/prom.txt"
grep -q '^lamod_fleet_mixed_digest 0$' "$workdir/prom.txt"
grep -q '^lamod_fleet_rollouts_total 1$' "$workdir/prom.txt"
[[ "$(grep -c '^lamod_fleet_replica_up{[^}]*} 1$' "$workdir/prom.txt")" == 3 ]]
"$workdir/lamoctl" fleet -table -server "http://$gw_addr" | tee "$workdir/fleet_after.txt"
[[ "$(grep -c ' ready ' "$workdir/fleet_after.txt")" == 3 ]]
grep -q "^artifact=$digest mixed_digest=false" "$workdir/fleet_after.txt"

echo "== graceful shutdown"
kill -TERM "$gw_pid"
for _ in $(seq 1 100); do
    if ! kill -0 "$gw_pid" 2>/dev/null; then
        break
    fi
    sleep 0.1
done
if kill -0 "$gw_pid" 2>/dev/null; then
    echo "gateway ignored SIGTERM" >&2
    exit 1
fi
wait "$gw_pid" || { echo "gateway exited non-zero" >&2; cat "$workdir/gateway.log" >&2; exit 1; }
grep -q "shut down cleanly" "$workdir/gateway.log"
for i in 0 1 2; do
    kill -TERM "${pids[$i]}"
done
for i in 0 1 2; do
    wait "${pids[$i]}" || { echo "replica $i exited non-zero" >&2; cat "$workdir/replica$i.log" >&2; exit 1; }
done
pids=()

echo "fleet smoke OK"

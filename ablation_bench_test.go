package lamofinder

import (
	"math/rand"
	"testing"

	"lamofinder/internal/dataset"
	"lamofinder/internal/dimotif"
	"lamofinder/internal/graph"
	"lamofinder/internal/label"
	"lamofinder/internal/motif"
	"lamofinder/internal/randnet"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// symmetry-pairing strategy in Eq. 3, the miner's beam width, and the
// null-model count cap.

// BenchmarkPairingOrbitExact measures Eq.-3 pairing on a star pattern,
// where per-orbit Hungarian assignment spans the automorphism group.
func BenchmarkPairingOrbitExact(b *testing.B) {
	benchPairing(b, starPattern(8))
}

// BenchmarkPairingAutomorphisms measures Eq.-3 pairing on a cycle pattern,
// where explicit automorphism enumeration is required.
func BenchmarkPairingAutomorphisms(b *testing.B) {
	benchPairing(b, cyclePattern(8))
}

func starPattern(n int) *graph.Dense {
	d := graph.NewDense(n)
	for v := 1; v < n; v++ {
		d.AddEdge(0, v)
	}
	return d
}

func cyclePattern(n int) *graph.Dense {
	d := graph.NewDense(n)
	for i := 0; i < n; i++ {
		d.AddEdge(i, (i+1)%n)
	}
	return d
}

func benchPairing(b *testing.B, pat *graph.Dense) {
	pe := dataset.NewPaperExample()
	s := label.NewSim(pe.Ontology, pe.Weights())
	sym := label.NewSymmetry(pat)
	rng := rand.New(rand.NewSource(1))
	n := pat.N()
	la := make([][]int32, n)
	lb := make([][]int32, n)
	for v := 0; v < n; v++ {
		la[v] = []int32{int32(rng.Intn(pe.Ontology.NumTerms()))}
		lb[v] = []int32{int32(rng.Intn(pe.Ontology.NumTerms()))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Occurrence(la, lb, sym)
	}
}

// BenchmarkMinerBeam30 and BenchmarkMinerBeamUnbounded ablate the beam
// width: the beam trades completeness for level-size control.
func BenchmarkMinerBeam30(b *testing.B)        { benchMinerBeam(b, 30) }
func BenchmarkMinerBeamUnbounded(b *testing.B) { benchMinerBeam(b, 0) }

func benchMinerBeam(b *testing.B, beam int) {
	rng := rand.New(rand.NewSource(9))
	g := randnet.BarabasiAlbert(600, 3, 2, rng)
	cfg := motif.Config{MinSize: 3, MaxSize: 6, MinFreq: 20, BeamWidth: beam,
		MaxOccPerClass: 100, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		motif.Find(g, cfg)
	}
}

// BenchmarkUniquenessCapped and BenchmarkUniquenessUncapped ablate the
// null-model count cap, which bounds the cost of certifying ultra-common
// patterns.
func BenchmarkUniquenessCapped(b *testing.B)   { benchUniqueness(b, 2000) }
func BenchmarkUniquenessUncapped(b *testing.B) { benchUniqueness(b, 0) }

func benchUniqueness(b *testing.B, cap int) {
	rng := rand.New(rand.NewSource(11))
	g := randnet.BarabasiAlbert(800, 3, 2, rng)
	ms := motif.Find(g, motif.Config{MinSize: 3, MaxSize: 4, MinFreq: 50,
		BeamWidth: 10, MaxOccPerClass: 50, Seed: 1})
	if len(ms) == 0 {
		b.Fatal("no motifs")
	}
	cfg := motif.UniquenessConfig{Networks: 2, MaxSteps: 5_000_000, CountCap: cap, Seed: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		motif.ScoreUniqueness(g, ms, cfg)
	}
}

// BenchmarkDirectedMiner measures the directed beam miner (the future-work
// extension) at the FFL scale.
func BenchmarkDirectedMiner(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	g := dimotif.NewDiGraph(500)
	for i := 0; i < 900; i++ {
		g.AddArc(rng.Intn(500), rng.Intn(500))
	}
	cfg := motif.Config{MinSize: 3, MaxSize: 4, MinFreq: 10, BeamWidth: 20,
		MaxOccPerClass: 100, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dimotif.Find(g, cfg)
	}
}

// BenchmarkRandESUSampling measures the RAND-ESU concentration estimator
// against the exact census cost (BenchmarkESUCensus).
func BenchmarkRandESUSampling(b *testing.B) {
	g := benchNetwork(500, 1000, 2)
	cfg := motif.RandESUConfig{K: 4, SampleFraction: 0.1, Seed: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		motif.SampleConcentrations(g, cfg)
	}
}

// BenchmarkMinerBeamStyle vs BenchmarkMinerNeMoStyle — the two mining
// strategies: induced-class beam pruning vs repeated-tree pruning.
func BenchmarkMinerNeMoStyle(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	g := randnet.BarabasiAlbert(600, 3, 2, rng)
	cfg := motif.NeMoConfig{MinSize: 3, MaxSize: 6, MinFreq: 20,
		MaxTreeClasses: 30, MaxOccPerTree: 200, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		motif.NeMoFind(g, cfg)
	}
}

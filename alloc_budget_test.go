package lamofinder

import (
	"encoding/json"
	"os"
	"testing"
)

// allocBudget is one benchmark's checked-in allocation ceiling. Budgets
// carry ~10-15% headroom over the measured numbers (see the latest
// BENCH_*.json): allocation counts are deterministic for a fixed seed, so
// a trip means the memory layout actually regressed, not noise.
type allocBudget struct {
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// TestMinerBeamAllocBudget is the build-side allocation gate (`make
// alloc-build`): the beam-miner benchmarks must stay within the budgets in
// ALLOC_BUDGET.json. The CSR + bitset + arena memory layout (DESIGN.md
// §13) is what keeps these numbers small; if a change trips this gate,
// either fix the regression or re-profile and justify a new budget in the
// same commit.
func TestMinerBeamAllocBudget(t *testing.T) {
	data, err := os.ReadFile("ALLOC_BUDGET.json")
	if err != nil {
		t.Fatal(err)
	}
	budgets := map[string]allocBudget{}
	if err := json.Unmarshal(data, &budgets); err != nil {
		t.Fatalf("ALLOC_BUDGET.json: %v", err)
	}
	benches := map[string]func(b *testing.B){
		"BenchmarkMinerBeam30":        func(b *testing.B) { benchMinerBeam(b, 30) },
		"BenchmarkMinerBeamUnbounded": func(b *testing.B) { benchMinerBeam(b, 0) },
	}
	for name, budget := range budgets {
		fn, ok := benches[name]
		if !ok {
			t.Fatalf("ALLOC_BUDGET.json names unknown benchmark %q", name)
		}
		r := testing.Benchmark(fn)
		allocs, bytes := r.AllocsPerOp(), r.AllocedBytesPerOp()
		t.Logf("%s: %d allocs/op (budget %d), %d B/op (budget %d)",
			name, allocs, budget.AllocsPerOp, bytes, budget.BytesPerOp)
		if allocs > budget.AllocsPerOp {
			t.Errorf("%s allocates %d/op, over the %d budget — the mining "+
				"hot path regressed (or re-profile and raise ALLOC_BUDGET.json)",
				name, allocs, budget.AllocsPerOp)
		}
		if budget.BytesPerOp > 0 && bytes > budget.BytesPerOp {
			t.Errorf("%s allocates %d B/op, over the %d budget",
				name, bytes, budget.BytesPerOp)
		}
	}
}

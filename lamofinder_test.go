package lamofinder

import (
	"strings"
	"testing"
)

func TestFacadeGraph(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if g.M() != 2 || !g.HasEdge(1, 0) {
		t.Errorf("graph state wrong: M=%d", g.M())
	}
	p := NewPattern(3)
	p.AddEdge(0, 1)
	p.AddEdge(1, 2)
	if p.M() != 2 || !p.Connected() {
		t.Errorf("pattern wrong: %v", p)
	}
}

func TestFacadeOntology(t *testing.T) {
	b := NewOntologyBuilder()
	b.AddTerm("root", "the root")
	b.AddRelation("leaf", "root", IsA)
	o, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := NewCorpus(o, 5)
	c.Annotate(0, o.Index("leaf"))
	w := o.ComputeWeights(c.DirectCounts())
	if w[o.Index("root")] != 1 {
		t.Errorf("root weight = %v", w[o.Index("root")])
	}
}

func TestFacadeOBO(t *testing.T) {
	o, err := ParseOBO(strings.NewReader("[Term]\nid: A\n\n[Term]\nid: B\nis_a: A\n"))
	if err != nil {
		t.Fatal(err)
	}
	if o.NumTerms() != 2 {
		t.Errorf("terms = %d", o.NumTerms())
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	// Paper example in one breath: weights, labeling, prediction machinery.
	pe := PaperExample()
	cfg := DefaultLabelConfig()
	cfg.Sigma = 2
	labeler := NewLabelerWithCounts(pe.Corpus, pe.Direct, cfg)
	labeled := labeler.LabelMotif(pe.Motif)
	if len(labeled) == 0 {
		t.Fatal("no labeled motifs")
	}

	// Feed the labeled motifs into the predictor over a toy task.
	task := NewTask(pe.Network, 2)
	for p := 0; p < 8; p++ {
		task.Functions[p] = []int{p % 2}
	}
	scorer := NewLabeledMotifScorer(task, labeled)
	curve := LeaveOneOut(task, scorer, 2)
	if curve.Method != "LabeledMotif" || len(curve.Points) != 2 {
		t.Errorf("curve: %+v", curve)
	}
}

func TestFacadeMining(t *testing.T) {
	g := NewGraph(60)
	for i := 0; i < 60; i++ {
		g.AddEdge(i, (i+1)%60)
	}
	for c := 0; c < 12; c++ {
		g.AddEdge(3*c, 3*c+2)
	}
	cfg := DefaultMineConfig()
	cfg.MaxSize = 3
	cfg.MinFreq = 10
	ms := FindMotifs(g, cfg)
	if len(ms) == 0 {
		t.Fatal("no motifs")
	}
	null := DefaultNullModel()
	null.Networks = 4
	ScoreUniqueness(g, ms, null)
	// At least the planted triangle should be measured.
	found := false
	for _, m := range ms {
		if m.Pattern.M() == 3 && m.Uniqueness >= 0.5 {
			found = true
		}
	}
	if !found {
		t.Error("planted triangle not over-represented")
	}
	if got := FilterUnique(ms, 2.0); len(got) != 0 {
		t.Error("impossible threshold returned motifs")
	}
}

func TestFacadeSimilarity(t *testing.T) {
	pe := PaperExample()
	s := NewSim(pe.Ontology, pe.Weights())
	g09 := pe.Term("G09")
	if got := s.Term(g09, g09); got != 1 {
		t.Errorf("self similarity = %v", got)
	}
	sym := NewSymmetry(pe.Motif.Pattern)
	if len(sym.Orbits) == 0 {
		t.Error("no orbits")
	}
	merged := LeastGeneral(pe.Ontology, pe.Weights(),
		[]int32{int32(pe.Term("G10"))}, []int32{int32(pe.Term("G11"))}, 0)
	if len(merged) != 1 || pe.Ontology.ID(int(merged[0])) != "G08" {
		t.Errorf("least general = %v", merged)
	}
}

func TestFacadeLoaders(t *testing.T) {
	g, names, err := LoadEdgeList(strings.NewReader("A B\nB C\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || len(names) != 3 {
		t.Errorf("N=%d names=%d", g.N(), len(names))
	}
	o, err := ParseOBO(strings.NewReader("[Term]\nid: X\n"))
	if err != nil {
		t.Fatal(err)
	}
	c, skipped, err := LoadAnnotations(strings.NewReader("A\tX\nA\tY\n"), o, names)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 || !c.Annotated(0) {
		t.Errorf("skipped=%d annotated=%v", skipped, c.Annotated(0))
	}
}

func TestFacadeDatasets(t *testing.T) {
	mcfg := DefaultMIPSConfig()
	mcfg.Proteins = 200
	mcfg.Edges = 280
	m := NewMIPS(mcfg)
	if m.Task.Network.N() != 200 {
		t.Errorf("MIPS N = %d", m.Task.Network.N())
	}
	if m.Task.NumAnnotated() == 0 {
		t.Error("MIPS has no annotations")
	}
}

func TestFacadeDictionaryAndPersistence(t *testing.T) {
	pe := PaperExample()
	cfg := DefaultLabelConfig()
	cfg.Sigma = 2
	labeler := NewLabelerWithCounts(pe.Corpus, pe.Direct, cfg)
	motifs := labeler.LabelMotif(pe.Motif)
	if len(motifs) == 0 {
		t.Fatal("no motifs")
	}
	d := NewDictionary(pe.Ontology, motifs)
	if len(d.CoveredProteins()) == 0 {
		t.Error("dictionary empty")
	}
	var sb strings.Builder
	if err := WriteMotifs(&sb, pe.Ontology, motifs); err != nil {
		t.Fatal(err)
	}
	back, dropped, err := ReadMotifs(strings.NewReader(sb.String()), pe.Ontology)
	if err != nil || dropped != 0 || len(back) != len(motifs) {
		t.Fatalf("round trip: %v dropped=%d n=%d", err, dropped, len(back))
	}
	var dot strings.Builder
	if err := WriteDOT(&dot, pe.Ontology, motifs[0], "m"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "graph") {
		t.Error("DOT malformed")
	}
}

func TestFacadeDirected(t *testing.T) {
	g := NewDiGraph(50)
	for i := 0; i+2 < 50; i += 3 {
		g.AddArc(i, i+1)
		g.AddArc(i+1, i+2)
		g.AddArc(i, i+2)
	}
	cfg := DefaultMineConfig()
	cfg.MaxSize = 3
	cfg.MinFreq = 5
	ms := FindDirectedMotifs(g, cfg)
	if len(ms) == 0 {
		t.Fatal("no directed motifs")
	}
	null := DefaultNullModel()
	null.Networks = 3
	ScoreDirectedUniqueness(g, ms, null)
	unique := FilterUniqueDirected(ms, 0.5)
	if len(unique) == 0 {
		t.Error("planted FFLs not over-represented")
	}
	p := NewDiPattern(2)
	p.AddArc(0, 1)
	if p.M() != 1 {
		t.Error("DiPattern wrong")
	}
}

func TestFacadeNeMoFind(t *testing.T) {
	g := NewGraph(60)
	for i := 0; i < 60; i++ {
		g.AddEdge(i, (i+1)%60)
	}
	ms := NeMoFind(g, NeMoConfig{MinSize: 3, MaxSize: 4, MinFreq: 10, Seed: 1})
	if len(ms) == 0 {
		t.Fatal("no classes")
	}
	for _, m := range ms {
		if m.Frequency < 10 {
			t.Errorf("below-threshold class: %v", m)
		}
	}
}

func TestFacadeScoreZAndYeast(t *testing.T) {
	g := NewGraph(120)
	for i := 0; i < 120; i++ {
		g.AddEdge(i, (i+1)%120)
	}
	for c := 0; c < 20; c++ {
		g.AddEdge(3*c, 3*c+2)
	}
	cfg := DefaultMineConfig()
	cfg.MaxSize = 3
	cfg.MinFreq = 10
	ms := FindMotifs(g, cfg)
	null := DefaultNullModel()
	null.Networks = 3
	zs := ScoreZ(g, ms, null)
	if len(zs) != len(ms) {
		t.Fatalf("z-scores = %d", len(zs))
	}
	ycfg := DefaultYeastConfig()
	ycfg.Proteins = 150
	ycfg.Edges = 260
	ycfg.TermsPerBranch = 40
	ycfg.Templates = []TemplateSpec{{Size: 4, Edges: 1, Instances: 10, PoolSize: 12}}
	y := NewYeast(ycfg)
	if y.Network.N() != 150 || len(y.Planted) != 1 {
		t.Errorf("yeast: N=%d planted=%d", y.Network.N(), len(y.Planted))
	}
}

// Package lamofinder reproduces "Labeling network motifs in protein
// interactomes for protein function prediction" (Chen, Hsu, Lee, Ng;
// ICDE 2007): LaMoFinder labels the vertices of network motifs with Gene
// Ontology terms so that the labeled subgraphs still occur frequently in
// the annotated PPI network, and the labeled motifs drive protein function
// prediction.
//
// The facade re-exports the user-facing types from the internal packages so
// the common path needs one import:
//
//	net, names, _ := lamofinder.LoadEdgeList(f)          // or a synthetic interactome
//	motifs := lamofinder.FindMotifs(net, lamofinder.DefaultMineConfig())
//	lamofinder.ScoreUniqueness(net, motifs, lamofinder.DefaultNullModel())
//	unique := lamofinder.FilterUnique(motifs, 0.95)
//	labeler := lamofinder.NewLabeler(corpus, lamofinder.DefaultLabelConfig())
//	labeled := labeler.LabelAll(unique)
//
// The pipeline's heavy stages — occurrence-similarity scoring, the null
// model, and subgraph enumeration — run on a worker pool sized by the
// Parallelism field of LabelConfig and NullModel (0 = GOMAXPROCS). Results
// are byte-identical at every worker count: work is chunked independently
// of the pool size, randomized stages derive one RNG stream per chunk, and
// merges are index-ordered.
//
// See the examples directory for runnable end-to-end programs and the
// internal/experiments package for the paper's tables and figures.
package lamofinder

import (
	"io"

	"lamofinder/internal/dataset"
	"lamofinder/internal/dimotif"
	"lamofinder/internal/eval"
	"lamofinder/internal/graph"
	"lamofinder/internal/label"
	"lamofinder/internal/motif"
	"lamofinder/internal/ontology"
	"lamofinder/internal/predict"
)

// Core graph types.
type (
	// Graph is a sparse undirected PPI network.
	Graph = graph.Graph
	// Pattern is a dense small graph used for motif topologies.
	Pattern = graph.Dense
)

// NewGraph returns a network with n proteins and no interactions.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewPattern returns an empty motif pattern over n vertices.
func NewPattern(n int) *Pattern { return graph.NewDense(n) }

// Ontology types.
type (
	// Ontology is an immutable GO-style DAG.
	Ontology = ontology.Ontology
	// OntologyBuilder accumulates terms and relations.
	OntologyBuilder = ontology.Builder
	// Corpus holds direct protein annotations.
	Corpus = ontology.Corpus
	// Weights are genome-specific term weights (Lord et al.).
	Weights = ontology.Weights
	// RelType distinguishes is-a from part-of edges.
	RelType = ontology.RelType
)

// GO relation kinds.
const (
	IsA    = ontology.IsA
	PartOf = ontology.PartOf
)

// NewOntologyBuilder returns an empty GO builder.
func NewOntologyBuilder() *OntologyBuilder { return ontology.NewBuilder() }

// ParseOBO reads a minimal OBO file.
func ParseOBO(r io.Reader) (*Ontology, error) { return ontology.ParseOBO(r) }

// NewCorpus returns an empty annotation corpus for n proteins.
func NewCorpus(o *Ontology, n int) *Corpus { return ontology.NewCorpus(o, n) }

// Motif mining.
type (
	// Motif is a mined pattern with its occurrence list.
	Motif = motif.Motif
	// MineConfig controls the meso-scale miner.
	MineConfig = motif.Config
	// NullModel controls the randomized-network uniqueness test; its
	// Parallelism field caps the per-network workers (0 = GOMAXPROCS)
	// without changing any score.
	NullModel = motif.UniquenessConfig
)

// DefaultMineConfig mirrors the paper's mining setup.
func DefaultMineConfig() MineConfig { return motif.DefaultConfig() }

// DefaultNullModel returns a screening-strength uniqueness test.
func DefaultNullModel() NullModel { return motif.DefaultUniquenessConfig() }

// FindMotifs mines frequent connected patterns with occurrence lists.
func FindMotifs(g *Graph, cfg MineConfig) []*Motif { return motif.Find(g, cfg) }

// ScoreUniqueness fills in motif uniqueness against degree-preserving
// randomizations.
func ScoreUniqueness(g *Graph, ms []*Motif, cfg NullModel) { motif.ScoreUniqueness(g, ms, cfg) }

// FilterUnique keeps motifs with uniqueness >= minUniq.
func FilterUnique(ms []*Motif, minUniq float64) []*Motif { return motif.FilterUnique(ms, minUniq) }

// NeMoConfig controls the NeMoFinder-style repeated-tree miner.
type NeMoConfig = motif.NeMoConfig

// DefaultNeMoConfig mirrors the SIGKDD-2006 setup at laptop scale.
func DefaultNeMoConfig() NeMoConfig { return motif.DefaultNeMoConfig() }

// NeMoFind mines frequent subgraph classes via repeated trees (the miner
// the paper's pipeline is built on).
func NeMoFind(g *Graph, cfg NeMoConfig) []*Motif { return motif.NeMoFind(g, cfg) }

// ZScore is the Milo-style over-representation statistic (extension to the
// paper's uniqueness fraction).
type ZScore = motif.ZScore

// ScoreZ computes z-scores for motifs against randomized networks.
func ScoreZ(g *Graph, ms []*Motif, cfg NullModel) []ZScore { return motif.ScoreZ(g, ms, cfg) }

// LaMoFinder labeling.
type (
	// Labeler runs LaMoFinder over one annotated ontology branch.
	Labeler = label.Labeler
	// LabelConfig controls LaMoFinder; its Parallelism field caps the
	// similarity/labeling workers (0 = GOMAXPROCS) without changing any
	// output.
	LabelConfig = label.Config
	// LabeledMotif is a motif whose vertices carry GO label sets.
	LabeledMotif = label.LabeledMotif
)

// DefaultLabelConfig mirrors the paper's sigma=10 / informative-FC=30 setup.
func DefaultLabelConfig() LabelConfig { return label.DefaultConfig() }

// NewLabeler prepares LaMoFinder against a corpus.
func NewLabeler(c *Corpus, cfg LabelConfig) *Labeler { return label.NewLabeler(c, cfg) }

// NewLabelerWithCounts is NewLabeler with externally supplied direct
// annotation counts (e.g. a whole-genome census).
func NewLabelerWithCounts(c *Corpus, direct []int, cfg LabelConfig) *Labeler {
	return label.NewLabelerWithCounts(c, direct, cfg)
}

// Similarity machinery (Eqs. 1-3).
type (
	// Sim computes memoized Lin / vertex / occurrence similarities.
	Sim = label.Sim
	// Symmetry captures a pattern's symmetric-vertex structure.
	Symmetry = label.Symmetry
)

// NewSim returns a similarity calculator over an ontology and weights.
func NewSim(o *Ontology, w Weights) *Sim { return label.NewSim(o, w) }

// NewSymmetry analyzes a motif pattern's automorphism structure.
func NewSymmetry(p *Pattern) *Symmetry { return label.NewSymmetry(p) }

// LeastGeneral merges two label sets into their least general common scheme
// (the paper's "minimum common father" labels, Table 4).
func LeastGeneral(o *Ontology, w Weights, a, b []int32, maxTerms int) []int32 {
	return label.LeastGeneral(o, w, a, b, maxTerms)
}

// Dictionary indexes labeled motifs for lookup by protein or GO term — the
// motif-function dictionary the paper's Section 5 envisages.
type Dictionary = label.Dictionary

// NewDictionary builds a queryable index over labeled motifs.
func NewDictionary(o *Ontology, motifs []*LabeledMotif) *Dictionary {
	return label.NewDictionary(o, motifs)
}

// WriteMotifs serializes labeled motifs as JSON lines; ReadMotifs loads
// them back (see label.WriteMotifs/ReadMotifs).
func WriteMotifs(w io.Writer, o *Ontology, motifs []*LabeledMotif) error {
	return label.WriteMotifs(w, o, motifs)
}

// ReadMotifs loads a JSON-lines motif dictionary written by WriteMotifs.
func ReadMotifs(r io.Reader, o *Ontology) ([]*LabeledMotif, int, error) {
	return label.ReadMotifs(r, o)
}

// WriteDOT renders a labeled motif as a Graphviz graph.
func WriteDOT(w io.Writer, o *Ontology, lm *LabeledMotif, name string) error {
	return label.WriteDOT(w, o, lm, name)
}

// FindConforming applies a labeled motif to a (possibly different)
// annotated network, returning the conforming occurrences — dictionary
// lookup against new data.
func FindConforming(g *Graph, c *Corpus, lm *LabeledMotif, limit int) [][]int32 {
	return label.FindConforming(g, c, lm, limit)
}

// Function prediction.
type (
	// Task is a function-prediction benchmark.
	Task = predict.Task
	// Scorer ranks candidate functions for a protein.
	Scorer = predict.Scorer
	// PRPoint is one precision/recall operating point.
	PRPoint = eval.PRPoint
	// Curve is a method's precision/recall trace.
	Curve = eval.Curve
)

// NewTask returns an empty prediction task.
func NewTask(g *Graph, numFunctions int) *Task { return predict.NewTask(g, numFunctions) }

// NewLabeledMotifScorer builds the paper's labeled-motif predictor
// (Eqs. 4-5) from LaMoFinder output.
func NewLabeledMotifScorer(t *Task, motifs []*LabeledMotif) Scorer {
	return label.NewScorer(t, motifs)
}

// Baseline scorers from the paper's Figure 9.
func NewNCScorer(t *Task) Scorer        { return predict.NewNC(t) }
func NewChiSquareScorer(t *Task) Scorer { return predict.NewChiSquare(t) }
func NewMRFScorer(t *Task) Scorer       { return predict.NewMRF(t) }
func NewProdistinScorer(t *Task) Scorer { return predict.NewProdistin(t) }

// NewGibbsMRFScorer is the fuller Gibbs-sampling MRF (Deng et al.'s method
// with unannotated labels integrated out by sampling).
func NewGibbsMRFScorer(t *Task) Scorer {
	return predict.NewGibbsMRF(t, predict.DefaultGibbsConfig())
}

// LeaveOneOut traces a scorer's precision/recall curve (top-k sweep).
func LeaveOneOut(t *Task, s Scorer, maxK int) Curve { return eval.LeaveOneOut(t, s, maxK) }

// Datasets and loaders.
type (
	// YeastConfig sizes the synthetic BIND-like interactome.
	YeastConfig = dataset.YeastConfig
	// TemplateSpec plants one repeated subgraph into the interactome.
	TemplateSpec = dataset.TemplateSpec
	// Yeast is the synthetic whole-genome interactome.
	Yeast = dataset.Yeast
	// MIPSConfig sizes the synthetic prediction benchmark.
	MIPSConfig = dataset.MIPSConfig
	// MIPS is the synthetic prediction benchmark.
	MIPS = dataset.MIPS
)

// NewYeast builds the synthetic interactome (substitute for the paper's
// BIND download; see DESIGN.md).
func NewYeast(cfg YeastConfig) *Yeast { return dataset.NewYeast(cfg) }

// DefaultYeastConfig mirrors the paper's network scale.
func DefaultYeastConfig() YeastConfig { return dataset.DefaultYeastConfig() }

// NewMIPS builds the synthetic prediction benchmark (substitute for the
// paper's MIPS download).
func NewMIPS(cfg MIPSConfig) *MIPS { return dataset.NewMIPS(cfg) }

// DefaultMIPSConfig mirrors the paper's evaluation scale.
func DefaultMIPSConfig() MIPSConfig { return dataset.DefaultMIPSConfig() }

// LoadEdgeList reads a "A B" interaction list, dropping self-links and
// duplicates as the paper does.
func LoadEdgeList(r io.Reader) (*Graph, []string, error) { return dataset.LoadEdgeList(r) }

// LoadAnnotations reads "protein term" annotation pairs into a corpus.
func LoadAnnotations(r io.Reader, o *Ontology, names []string) (*Corpus, int, error) {
	return dataset.LoadAnnotations(r, o, names)
}

// PaperExample returns the paper's worked example (Figures 1-3, Tables
// 1-4) as an exact fixture.
func PaperExample() *dataset.PaperExample { return dataset.NewPaperExample() }

// Directed labeled motifs — the paper's stated further work.
type (
	// DiGraph is a sparse directed network (e.g. gene regulation).
	DiGraph = dimotif.DiGraph
	// DiPattern is a dense directed motif pattern.
	DiPattern = dimotif.DiDense
	// DiMotif is a mined directed motif with occurrences.
	DiMotif = dimotif.Motif
	// LabeledDiMotif is a directed motif with GO label sets.
	LabeledDiMotif = dimotif.LabeledMotif
)

// NewDiGraph returns a directed network with n vertices.
func NewDiGraph(n int) *DiGraph { return dimotif.NewDiGraph(n) }

// NewDiPattern returns an empty directed pattern.
func NewDiPattern(n int) *DiPattern { return dimotif.NewDiDense(n) }

// FindDirectedMotifs mines frequent weakly connected directed patterns.
func FindDirectedMotifs(g *DiGraph, cfg MineConfig) []*DiMotif { return dimotif.Find(g, cfg) }

// ScoreDirectedUniqueness tests directed motifs against in/out-degree-
// preserving randomizations.
func ScoreDirectedUniqueness(g *DiGraph, ms []*DiMotif, cfg NullModel) {
	dimotif.ScoreUniqueness(g, ms, cfg)
}

// FilterUniqueDirected keeps directed motifs with uniqueness >= minUniq.
func FilterUniqueDirected(ms []*DiMotif, minUniq float64) []*DiMotif {
	return dimotif.FilterUnique(ms, minUniq)
}

// LabelDirected runs LaMoFinder on a directed motif using the labeler's
// corpus and configuration.
func LabelDirected(l *Labeler, m *DiMotif) []*LabeledDiMotif { return dimotif.Label(l, m) }

// Benchmarks regenerating each table and figure of the paper (see
// EXPERIMENTS.md for the paper-vs-measured record), plus micro-benchmarks
// for the load-bearing substrates. Figure pipelines run on reduced-scale
// presets so `go test -bench=.` stays interactive; cmd/experiments runs the
// paper-scale versions.
package lamofinder

import (
	"math/rand"
	"testing"

	"lamofinder/internal/dataset"
	"lamofinder/internal/experiments"
	"lamofinder/internal/graph"
	"lamofinder/internal/label"
	"lamofinder/internal/motif"
	"lamofinder/internal/predict"
	"lamofinder/internal/randnet"
)

// BenchmarkTable1Weights regenerates Table 1 (GO term weights).
func BenchmarkTable1Weights(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r := experiments.Table1(); len(r.Rows) != 11 {
			b.Fatal("table 1 rows")
		}
	}
}

// BenchmarkTable3Similarity regenerates Table 3 (SV rows and SO(o1,o2)).
func BenchmarkTable3Similarity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r := experiments.Table3(); r.SO <= 0 {
			b.Fatal("SO")
		}
	}
}

// BenchmarkTable4LeastGeneral regenerates Table 4 (minimum common father
// labels).
func BenchmarkTable4LeastGeneral(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r := experiments.Table4(); len(r.Rows) != 4 {
			b.Fatal("table 4 rows")
		}
	}
}

// benchFigure6Config is a miniature Figure-6 pipeline for benchmarking.
func benchFigure6Config() experiments.Figure6Config {
	cfg := experiments.QuickFigure6Config()
	cfg.Yeast.Proteins = 500
	cfg.Yeast.Edges = 900
	cfg.Yeast.TermsPerBranch = 80
	cfg.Yeast.Templates = []dataset.TemplateSpec{
		{Size: 4, Edges: 1, Instances: 25, PoolSize: 12},
		{Size: 6, Edges: 2, Instances: 25, PoolSize: 18},
	}
	cfg.Mine.MaxSize = 6
	cfg.Mine.MinFreq = 15
	cfg.Null.Networks = 2
	cfg.Null.MaxSteps = 50_000
	cfg.Branches = 1
	return cfg
}

// BenchmarkFigure6Pipeline runs the mine -> null model -> label pipeline
// behind Figure 6 and the Section-4 statistics (reduced scale).
func BenchmarkFigure6Pipeline(b *testing.B) {
	cfg := benchFigure6Config()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure6(cfg)
		if r.LabeledMotifs == 0 {
			b.Fatal("no labeled motifs")
		}
	}
}

// BenchmarkFigure7Examples regenerates the Figure-7 exhibit search
// (reduced scale).
func BenchmarkFigure7Examples(b *testing.B) {
	cfg := experiments.DefaultFigure7Config()
	cfg.Yeast.Proteins = 500
	cfg.Yeast.Edges = 900
	cfg.Yeast.TermsPerBranch = 80
	cfg.Yeast.Templates = []dataset.TemplateSpec{
		{Size: 5, Edges: 2, Instances: 25, PoolSize: 15},
		{Size: 6, Edges: 2, Instances: 25, PoolSize: 18},
	}
	cfg.Mine.MaxSize = 6
	cfg.Mine.MinFreq = 15
	cfg.Label.Sigma = 6
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure7(cfg)
		if r.UniCount+r.NonUniCount+r.ParallelCount == 0 {
			b.Fatal("no exhibits found")
		}
	}
}

// BenchmarkFigure9Prediction runs the five-method leave-one-out comparison
// behind Figure 9 (reduced scale).
func BenchmarkFigure9Prediction(b *testing.B) {
	cfg := experiments.QuickFigure9Config()
	cfg.MIPS.Proteins = 400
	cfg.MIPS.Edges = 560
	cfg.Null.Networks = 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure9(cfg)
		if len(r.Curves) != 5 {
			b.Fatal("curves")
		}
	}
}

// ---- substrate micro-benchmarks ----

func benchNetwork(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return randnet.BarabasiAlbert(n, 3, m/n, rng)
}

// BenchmarkCanonicalKey measures exact canonicalization of size-8 patterns.
func BenchmarkCanonicalKey(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var ds []*graph.Dense
	for i := 0; i < 64; i++ {
		d := graph.NewDense(8)
		for v := 1; v < 8; v++ {
			d.AddEdge(v, rng.Intn(v))
		}
		d.AddEdge(rng.Intn(8), rng.Intn(8))
		ds = append(ds, d)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.CanonicalKey(ds[i%len(ds)])
	}
}

// BenchmarkESUCensus measures the exact FANMOD-style size-4 census.
func BenchmarkESUCensus(b *testing.B) {
	g := benchNetwork(500, 1000, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		motif.CensusESU(g, 4, 50)
	}
}

// BenchmarkMesoMiner measures the beam miner to size 8.
func BenchmarkMesoMiner(b *testing.B) {
	g := benchNetwork(800, 1600, 3)
	cfg := motif.Config{MinSize: 3, MaxSize: 8, MinFreq: 20, BeamWidth: 30, MaxOccPerClass: 100, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		motif.Find(g, cfg)
	}
}

// BenchmarkDegreePreservingNull measures one randomized-network generation.
func BenchmarkDegreePreservingNull(b *testing.B) {
	g := benchNetwork(1000, 2000, 4)
	rng := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		randnet.Randomize(g, rng)
	}
}

// BenchmarkOccurrenceSimilarity measures Eq. 3 with symmetry pairing on the
// paper's example motif.
func BenchmarkOccurrenceSimilarity(b *testing.B) {
	pe := dataset.NewPaperExample()
	s := label.NewSim(pe.Ontology, pe.Weights())
	sym := label.NewSymmetry(pe.Motif.Pattern)
	labelsOf := func(occ []int32) [][]int32 {
		out := make([][]int32, len(occ))
		for i, p := range occ {
			out[i] = pe.Corpus.Terms(int(p))
		}
		return out
	}
	la := labelsOf(pe.Motif.Occurrences[0])
	lb := labelsOf(pe.Motif.Occurrences[1])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Occurrence(la, lb, sym)
	}
}

// BenchmarkLabelMotif measures LaMoFinder on one motif with 60 occurrences.
func BenchmarkLabelMotif(b *testing.B) {
	cfg := dataset.DefaultYeastConfig()
	cfg.Proteins = 400
	cfg.Edges = 700
	cfg.TermsPerBranch = 80
	cfg.Templates = []dataset.TemplateSpec{{Size: 5, Edges: 2, Instances: 60, PoolSize: 25}}
	y := dataset.NewYeast(cfg)
	pt := y.Planted[0]
	m := &motif.Motif{Pattern: pt.Pattern, Occurrences: pt.Instances,
		Frequency: len(pt.Instances), Uniqueness: 1}
	lcfg := label.DefaultConfig()
	lcfg.Sigma = 6
	lcfg.MaxOccurrences = 60
	labeler := label.NewLabeler(y.Corpora[0], lcfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		labeler.LabelMotif(m)
	}
}

// BenchmarkLeaveOneOutNC measures the evaluation harness with the cheapest
// scorer.
func BenchmarkLeaveOneOutNC(b *testing.B) {
	mcfg := dataset.DefaultMIPSConfig()
	mcfg.Proteins = 500
	mcfg.Edges = 700
	m := dataset.NewMIPS(mcfg)
	nc := predict.NewNC(m.Task)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LeaveOneOut(m.Task, nc, 13)
	}
}

// BenchmarkFigure8Demonstration regenerates the Figure-8 prediction
// walk-through on the worked example.
func BenchmarkFigure8Demonstration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r := experiments.Figure8(); r.TopFunction == "" {
			b.Fatal("no prediction")
		}
	}
}

// Command lamovet runs the project-specific static analysis suite guarding
// the LaMoFinder determinism contract (see DESIGN.md "Static analysis
// gates"). It is stdlib-only and loads packages itself, so it runs with
// `go run ./cmd/lamovet ./...` on a dependency-free checkout.
//
// Usage:
//
//	lamovet [-rules determinism,mapiter,floateq,errdrop,nopanic,nohttpglobals,noadhoclog] [-list] [patterns...]
//
// Patterns follow the go tool ("./...", "./internal/graph"); with no
// patterns the whole module is analyzed. Exit status is 1 if any analyzer
// reports a finding, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"lamofinder/internal/analysis"
)

func main() {
	rules := flag.String("rules", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lamovet [-rules a,b] [-list] [patterns...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers, err := analysis.Select(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lamovet:", err)
		os.Exit(2)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lamovet:", err)
		os.Exit(2)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lamovet:", err)
		os.Exit(2)
	}
	loader := analysis.NewLoader(root)
	paths, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lamovet:", err)
		os.Exit(2)
	}
	if len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "lamovet: no packages match %v\n", patterns)
		os.Exit(2)
	}

	bad := false
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lamovet:", err)
			os.Exit(2)
		}
		for _, d := range analysis.RunAnalyzers(pkg, analyzers) {
			bad = true
			fmt.Println(d)
		}
	}
	if bad {
		os.Exit(1)
	}
}

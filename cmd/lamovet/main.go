// Command lamovet runs the project-specific static analysis suite guarding
// the LaMoFinder determinism contract (see DESIGN.md "Static analysis
// gates" and "Interprocedural analysis"). It is stdlib-only and loads
// packages itself, so it runs with `go run ./cmd/lamovet ./...` on a
// dependency-free checkout.
//
// Usage:
//
//	lamovet [-rules taintdet,lockorder,...] [-list] [-json] [-workers N] [patterns...]
//
// Patterns follow the go tool ("./...", "./internal/graph"); with no
// patterns the whole module is analyzed. The per-package rules run in
// parallel across packages; the interprocedural rules (taintdet,
// lockorder, goroleak, allocbudget) run once over the module-wide engine
// built from every loaded package. -json emits the findings as a JSON
// array (empty array when clean) for the CI artifact. Exit status is 1 if
// any analyzer reports a finding, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lamofinder/internal/analysis"
)

// jsonDiag is the stable wire shape of one finding in -json mode.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func main() {
	rules := flag.String("rules", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	workers := flag.Int("workers", 0, "per-package analysis parallelism (default: GOMAXPROCS)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lamovet [-rules a,b] [-list] [-json] [-workers N] [patterns...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers, err := analysis.Select(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lamovet:", err)
		os.Exit(2)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lamovet:", err)
		os.Exit(2)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lamovet:", err)
		os.Exit(2)
	}
	loader := analysis.NewLoader(root)
	paths, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lamovet:", err)
		os.Exit(2)
	}
	if len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "lamovet: no packages match %v\n", patterns)
		os.Exit(2)
	}
	for _, path := range paths {
		if _, err := loader.Load(path); err != nil {
			fmt.Fprintln(os.Stderr, "lamovet:", err)
			os.Exit(2)
		}
	}

	// The engine sees every loaded package (targets plus the dependencies
	// the loader pulled in), so interprocedural facts cross package
	// boundaries; diagnostics are reported only for the target paths.
	engine := analysis.NewEngine(loader.Loaded())
	diags := engine.Run(analyzers, paths, *workers)

	if *asJSON {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Column:  d.Pos.Column,
				Rule:    d.Rule,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "lamovet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// Command benchjson records a benchmark trajectory point: it runs
// `go test -bench -benchmem` (or parses an existing benchmark log) and
// writes the results as a dated JSON snapshot, so successive optimization
// PRs can commit comparable before/after numbers (see EXPERIMENTS.md).
// The snapshot schema lives in internal/benchfmt, shared with cmd/lamoload
// so load-test latency lands in the same trajectory files.
//
// Usage:
//
//	benchjson                          # run all benchmarks, write BENCH_<date>.json
//	benchjson -bench Figure6 -time 3x  # subset, fixed iteration count
//	benchjson -pkg ./...               # every package's benchmarks
//	benchjson -input bench.txt         # parse a saved `go test -bench` log
//	benchjson -out numbers.json        # explicit output path
//
// Make target: `make bench-json`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"

	"lamofinder/internal/benchfmt"
)

func main() {
	bench := flag.String("bench", ".", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("time", "", "go test -benchtime value (e.g. 3x, 2s); empty = default")
	count := flag.Int("count", 1, "go test -count value")
	pkg := flag.String("pkg", ".", "package pattern to benchmark")
	input := flag.String("input", "", "parse this saved benchmark log instead of running go test")
	out := flag.String("out", "", "output path (default BENCH_<yyyy-mm-dd>.json)")
	baseline := flag.String("baseline", "",
		"prior BENCH_*.json to diff against (default: latest in the output directory; \"none\" disables)")
	flag.Parse()

	var (
		r       io.Reader
		command string
		wait    func() error
	)
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer func() { _ = f.Close() }()
		r = f
	} else {
		args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
			"-count", strconv.Itoa(*count)}
		if *benchtime != "" {
			args = append(args, "-benchtime", *benchtime)
		}
		args = append(args, *pkg)
		command = "go " + strings.Join(args, " ")
		fmt.Fprintf(os.Stderr, "benchjson: %s\n", command)
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		pipe, err := cmd.StdoutPipe()
		if err != nil {
			fatal(err)
		}
		if err := cmd.Start(); err != nil {
			fatal(err)
		}
		wait = cmd.Wait
		r = io.TeeReader(pipe, os.Stderr)
	}

	results, err := benchfmt.ParseBench(r)
	if err != nil {
		fatal(err)
	}
	if wait != nil {
		if err := wait(); err != nil {
			fatal(fmt.Errorf("go test: %w", err))
		}
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found"))
	}

	snap := benchfmt.NewSnapshot(command, results)
	path := *out
	if path == "" {
		path = "BENCH_" + snap.Date + ".json"
	}
	attachBaseline(&snap, path, *baseline)
	if err := snap.WriteFile(path); err != nil {
		fatal(err)
	}
	if path != "-" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), path)
	}
}

// attachBaseline diffs the snapshot against a prior trajectory point — an
// explicit file, or the latest dated BENCH_*.json next to the output — and
// prints the per-benchmark deltas so an optimization PR's before/after
// lands both on stderr and inside the committed snapshot.
func attachBaseline(snap *benchfmt.Snapshot, outPath, flagVal string) {
	if flagVal == "none" || outPath == "-" && flagVal == "" {
		return
	}
	basePath := flagVal
	if basePath == "" {
		dir := filepath.Dir(outPath)
		latest, err := benchfmt.LatestSnapshot(dir, filepath.Base(outPath))
		if err != nil || latest == "" {
			return // no prior snapshot: nothing to diff
		}
		basePath = latest
	}
	base, err := benchfmt.ReadFile(basePath)
	if err != nil {
		fatal(fmt.Errorf("baseline: %w", err))
	}
	snap.Baseline = benchfmt.Diff(base, filepath.Base(basePath), snap.Results)
	fmt.Fprintf(os.Stderr, "benchjson: baseline %s (%s)\n", basePath, base.Date)
	for _, d := range snap.Baseline.Deltas {
		line := fmt.Sprintf("  %-40s ns %+6.1f%%", d.Name, d.NsPct)
		if d.BytesPct != nil {
			line += fmt.Sprintf("  B/op %+6.1f%%", *d.BytesPct)
		}
		if d.AllocsPct != nil {
			line += fmt.Sprintf("  allocs/op %+6.1f%%", *d.AllocsPct)
		}
		fmt.Fprintln(os.Stderr, line)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

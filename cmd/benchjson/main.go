// Command benchjson records a benchmark trajectory point: it runs
// `go test -bench -benchmem` (or parses an existing benchmark log) and
// writes the results as a dated JSON snapshot, so successive optimization
// PRs can commit comparable before/after numbers (see EXPERIMENTS.md).
//
// Usage:
//
//	benchjson                          # run all benchmarks, write BENCH_<date>.json
//	benchjson -bench Figure6 -time 3x  # subset, fixed iteration count
//	benchjson -input bench.txt         # parse a saved `go test -bench` log
//	benchjson -out numbers.json        # explicit output path
//
// Make target: `make bench-json`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp int64   `json:"bytes_per_op,omitempty"`
	AllocsOp   int64   `json:"allocs_per_op,omitempty"`
}

// Snapshot is the dated trajectory point benchjson writes.
type Snapshot struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Command    string   `json:"command,omitempty"`
	Results    []Result `json:"results"`
}

func main() {
	bench := flag.String("bench", ".", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("time", "", "go test -benchtime value (e.g. 3x, 2s); empty = default")
	count := flag.Int("count", 1, "go test -count value")
	pkg := flag.String("pkg", ".", "package to benchmark")
	input := flag.String("input", "", "parse this saved benchmark log instead of running go test")
	out := flag.String("out", "", "output path (default BENCH_<yyyy-mm-dd>.json)")
	flag.Parse()

	var (
		r       io.Reader
		command string
		wait    func() error
	)
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer func() { _ = f.Close() }()
		r = f
	} else {
		args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
			"-count", strconv.Itoa(*count)}
		if *benchtime != "" {
			args = append(args, "-benchtime", *benchtime)
		}
		args = append(args, *pkg)
		command = "go " + strings.Join(args, " ")
		fmt.Fprintf(os.Stderr, "benchjson: %s\n", command)
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		pipe, err := cmd.StdoutPipe()
		if err != nil {
			fatal(err)
		}
		if err := cmd.Start(); err != nil {
			fatal(err)
		}
		wait = cmd.Wait
		r = io.TeeReader(pipe, os.Stderr)
	}

	results, err := parseBench(r)
	if err != nil {
		fatal(err)
	}
	if wait != nil {
		if err := wait(); err != nil {
			fatal(fmt.Errorf("go test: %w", err))
		}
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found"))
	}

	snap := Snapshot{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Command:    command,
		Results:    results,
	}
	path := *out
	if path == "" {
		path = "BENCH_" + snap.Date + ".json"
	}
	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if path == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			fatal(err)
		}
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), path)
}

// parseBench extracts Benchmark lines from `go test -bench` output:
//
//	BenchmarkName-8   100   123456 ns/op   789 B/op   12 allocs/op
func parseBench(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		res := Result{Procs: 1}
		res.Name = fields[0]
		if i := strings.LastIndex(res.Name, "-"); i > 0 {
			if p, err := strconv.Atoi(res.Name[i+1:]); err == nil {
				res.Procs = p
				res.Name = res.Name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res.Iterations = iters
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		res.NsPerOp = ns
		for i := 3; i+1 < len(fields); i++ {
			switch fields[i+1] {
			case "B/op":
				res.BytesPerOp, _ = strconv.ParseInt(fields[i], 10, 64)
			case "allocs/op":
				res.AllocsOp, _ = strconv.ParseInt(fields[i], 10, 64)
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

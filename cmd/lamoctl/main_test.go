package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestTraceListTable renders GET /v1/traces as columns.
func TestTraceListTable(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/traces" || r.URL.Query().Get("n") != "2" {
			http.NotFound(w, r)
			return
		}
		_, _ = io.WriteString(w, `{"traces":[`+
			`{"trace":"req-9","root":"predict","spans":4,"dur_us":120},`+
			`{"trace":"gw-1","root":"probe-round","spans":3,"dropped_spans":1,"dur_us":88}]}`)
	}))
	defer ts.Close()

	var out, errb bytes.Buffer
	if code := run([]string{"trace", "-table", "-n", "2", "-server", ts.URL}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{"TRACE", "req-9", "predict", "probe-round"} {
		if !strings.Contains(got, want) {
			t.Fatalf("listing lacks %q:\n%s", want, got)
		}
	}
}

// TestTraceTableTree renders a gateway-merged trace as an indented span
// tree with the replica's spans spliced under the attempt that caused
// them.
func TestTraceTableTree(t *testing.T) {
	body := `{"trace":"req-7","spans":[` +
		`{"id":0,"parent":-1,"name":"predict","start_us":0,"dur_us":900},` +
		`{"id":1,"parent":0,"name":"attempt","detail":"http://slow canceled: lost race","start_us":10,"dur_us":500},` +
		`{"id":2,"parent":0,"name":"hedge","detail":"http://fast","start_us":300,"dur_us":200}],` +
		`"replicas":[{"replica":"http://fast","remote_parent":2,"spans":[` +
		`{"id":0,"parent":-1,"name":"predict","start_us":0,"dur_us":150},` +
		`{"id":1,"parent":0,"name":"rank","detail":"index","rows_in":1,"rows_out":1,"start_us":20,"dur_us":90}]}]}`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/traces/req-7" {
			http.NotFound(w, r)
			return
		}
		_, _ = io.WriteString(w, body)
	}))
	defer ts.Close()

	var out, errb bytes.Buffer
	if code := run([]string{"trace", "req-7", "-table", "-server", ts.URL}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	if !strings.HasPrefix(got, "trace=req-7 spans=3\n") {
		t.Fatalf("header wrong:\n%s", got)
	}
	// The tree reads causally: hedge attempt, then the winning replica's
	// own spans nested one level deeper.
	hedge := strings.Index(got, "hedge")
	splice := strings.Index(got, "replica http://fast")
	rank := strings.Index(got, "rank")
	if hedge < 0 || splice < hedge || rank < splice {
		t.Fatalf("replica tree not spliced under the hedge span:\n%s", got)
	}
	if !strings.Contains(got, "canceled: lost race") {
		t.Fatalf("canceled attempt detail missing:\n%s", got)
	}
	if !strings.Contains(got, "1/1") {
		t.Fatalf("rows column missing for the rank span:\n%s", got)
	}
	// Indentation encodes depth: the replica's rank span sits three
	// levels in (root -> hedge -> replica -> spans -> rank's parent...).
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, "rank") && !strings.HasPrefix(line, strings.Repeat("  ", 4)) {
			t.Fatalf("rank span not indented to depth 4: %q", line)
		}
	}
}

// TestQueryExplain sends "explain": true and prints the operator table.
func TestQueryExplain(t *testing.T) {
	var gotPlan struct {
		Explain bool `json:"explain"`
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/query" {
			http.NotFound(w, r)
			return
		}
		if err := json.NewDecoder(r.Body).Decode(&gotPlan); err != nil {
			t.Errorf("decode plan: %v", err)
		}
		_, _ = io.WriteString(w, `{"artifact":"abc","columns":["protein"],"row_count":2,"rows":[["p1"],["p2"]],`+
			`"explain":{"wall_us":42,"operators":[`+
			`{"op":"scan","rows_in":20,"rows_out":20,"busy_us":30},`+
			`{"op":"filter","rows_in":20,"rows_out":2,"busy_us":5},`+
			`{"op":"emit","rows_in":2,"rows_out":2,"busy_us":3}]}}`)
	}))
	defer ts.Close()

	var out, errb bytes.Buffer
	if code := run([]string{"query", "-explain", "-server", ts.URL}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !gotPlan.Explain {
		t.Fatal("-explain did not set the plan's explain field")
	}
	got := out.String()
	if !strings.Contains(got, "artifact=abc rows=2 wall_us=42") {
		t.Fatalf("summary line wrong:\n%s", got)
	}
	for _, want := range []string{"OP", "ROWS_IN", "scan", "filter", "emit"} {
		if !strings.Contains(got, want) {
			t.Fatalf("operator table lacks %q:\n%s", want, got)
		}
	}
}

// TestQueryExplainRejectsTable: the two table renderings are mutually
// exclusive, and the error says so before any request is sent.
func TestQueryExplainRejectsTable(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"query", "-explain", "-table", "-server", "http://127.0.0.1:1"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit %d, want 2 (usage error)", code)
	}
	if !strings.Contains(errb.String(), "mutually exclusive") {
		t.Fatalf("error does not explain the conflict: %s", errb.String())
	}
}

// TestQueryExplainMissingField: a response without explain stats is an
// error, not silent empty output.
func TestQueryExplainMissingField(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, `{"artifact":"abc","columns":["protein"],"row_count":0,"rows":[]}`)
	}))
	defer ts.Close()
	var out, errb bytes.Buffer
	if code := run([]string{"query", "-explain", "-server", ts.URL}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "no explain stats") {
		t.Fatalf("error message wrong: %s", errb.String())
	}
}

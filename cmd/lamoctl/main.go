// Command lamoctl is the client for a running lamod daemon, plus an offline
// artifact inspector.
//
// Usage:
//
//	lamoctl predict -protein NAME [-protein NAME ...] [-k N] [-server URL]
//	lamoctl motifs  [-server URL]
//	lamoctl health  [-server URL]
//	lamoctl metrics [-server URL]
//	lamoctl inspect -artifact FILE
//
// Network subcommands print the daemon's JSON response verbatim, so output
// is byte-deterministic whenever the daemon's is. inspect reads an artifact
// file directly, without a server.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"time"

	"lamofinder/internal/artifact"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		errln(stderr, "usage: lamoctl <predict|motifs|health|metrics|inspect> [flags]")
		return 2
	}
	switch args[0] {
	case "predict":
		return runPredict(args[1:], stdout, stderr)
	case "motifs":
		return runGet(args[1:], "/v1/motifs", stdout, stderr)
	case "health":
		return runGet(args[1:], "/v1/healthz", stdout, stderr)
	case "metrics":
		return runGet(args[1:], "/v1/metrics", stdout, stderr)
	case "inspect":
		return runInspect(args[1:], stdout, stderr)
	default:
		errf(stderr, "lamoctl: unknown subcommand %q\n", args[0])
		return 2
	}
}

// errf and errln write diagnostics to the (injected, testable) stderr; a
// failed diagnostic write has nowhere to be reported.
func errf(w io.Writer, format string, args ...any) { _, _ = fmt.Fprintf(w, format, args...) }
func errln(w io.Writer, args ...any)               { _, _ = fmt.Fprintln(w, args...) }

// client is the only HTTP client lamoctl uses: explicit, with a deadline,
// never the process-global http.DefaultClient.
func client(timeout time.Duration) *http.Client {
	return &http.Client{Timeout: timeout}
}

// fetch GETs url and writes the response body through verbatim. Non-2xx
// responses (the daemon's JSON error bodies) go to stderr with exit 1.
func fetch(c *http.Client, u string, stdout, stderr io.Writer) int {
	resp, err := c.Get(u)
	if err != nil {
		errf(stderr, "lamoctl: %v\n", err)
		return 1
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		errf(stderr, "lamoctl: read response: %v\n", err)
		return 1
	}
	if resp.StatusCode != http.StatusOK {
		errf(stderr, "lamoctl: server returned %s: %s", resp.Status, body)
		return 1
	}
	_, _ = stdout.Write(body)
	return 0
}

type serverFlags struct {
	server  *string
	timeout *time.Duration
}

func addServerFlags(fs *flag.FlagSet) serverFlags {
	return serverFlags{
		server:  fs.String("server", "http://127.0.0.1:8077", "lamod base URL"),
		timeout: fs.Duration("timeout", 10*time.Second, "request deadline"),
	}
}

func runGet(args []string, path string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lamoctl "+path, flag.ContinueOnError)
	fs.SetOutput(stderr)
	sf := addServerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		errf(stderr, "lamoctl: unexpected arguments %q\n", fs.Args())
		return 2
	}
	return fetch(client(*sf.timeout), *sf.server+path, stdout, stderr)
}

// repeatedString collects repeated -protein flags in order.
type repeatedString []string

func (r *repeatedString) String() string { return fmt.Sprint([]string(*r)) }
func (r *repeatedString) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func runPredict(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lamoctl predict", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sf := addServerFlags(fs)
	var proteins repeatedString
	fs.Var(&proteins, "protein", "protein name to score (repeatable)")
	k := fs.Int("k", 0, "top-k functions to return (0 = all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		errf(stderr, "lamoctl predict: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if len(proteins) == 0 {
		errln(stderr, "lamoctl predict: at least one -protein is required")
		fs.Usage()
		return 2
	}
	if *k < 0 {
		errln(stderr, "lamoctl predict: -k must be non-negative")
		return 2
	}
	q := url.Values{}
	for _, p := range proteins {
		q.Add("protein", p)
	}
	if *k > 0 {
		q.Set("k", fmt.Sprint(*k))
	}
	return fetch(client(*sf.timeout), *sf.server+"/v1/predict?"+q.Encode(), stdout, stderr)
}

// inspectSummary is lamoctl's offline view of an artifact file.
type inspectSummary struct {
	Artifact     string `json:"artifact"`
	Format       int    `json:"format"`
	Indexed      bool   `json:"indexed"`
	Dataset      string `json:"dataset"`
	Note         string `json:"note,omitempty"`
	Proteins     int    `json:"proteins"`
	Interactions int    `json:"interactions"`
	Functions    int    `json:"functions"`
	Terms        int    `json:"terms"`
	BorderTerms  int    `json:"border_terms"`
	MinDirect    int    `json:"min_direct"`
	Motifs       int    `json:"motifs"`
	Coverage     int    `json:"coverage"`
}

func runInspect(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lamoctl inspect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	path := fs.String("artifact", "", "artifact file to inspect (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		errf(stderr, "lamoctl inspect: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if *path == "" {
		errln(stderr, "lamoctl inspect: -artifact is required")
		fs.Usage()
		return 2
	}
	art, err := artifact.LoadFile(*path)
	if err != nil {
		errf(stderr, "lamoctl inspect: %v\n", err)
		return 1
	}
	digest, err := art.Digest()
	if err != nil {
		errf(stderr, "lamoctl inspect: %v\n", err)
		return 1
	}
	format := artifact.Version1
	if art.Index != nil {
		format = artifact.Version
	}
	sum := inspectSummary{
		Artifact:     digest,
		Format:       format,
		Indexed:      art.Index != nil,
		Dataset:      art.Dataset,
		Note:         art.Note,
		Proteins:     art.Graph.N(),
		Interactions: art.Graph.M(),
		Functions:    art.NumFunctions,
		Terms:        art.Ontology.NumTerms(),
		BorderTerms:  len(art.Border),
		MinDirect:    art.MinDirect,
		Motifs:       len(art.Motifs),
		Coverage:     art.NewScorer().Coverage(),
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		errf(stderr, "lamoctl inspect: %v\n", err)
		return 1
	}
	_, _ = stdout.Write(buf.Bytes())
	return 0
}

// Command lamoctl is the client for a running lamod daemon, plus an offline
// artifact inspector.
//
// Usage:
//
//	lamoctl predict -protein NAME [-protein NAME ...] [-k N] [-trace ID] [-server URL]
//	lamoctl query   [-plan FILE] [-topk N] [-group-by category] [-min-degree N]
//	                [-max-degree N] [-min-score X] [-annotated BOOL]
//	                [-proteins A,B] [-project COLS] [-table] [-explain] [-server URL]
//	lamoctl trace   [ID] [-n N] [-table] [-server URL]
//	lamoctl motifs  [-server URL]
//	lamoctl health  [-server URL]
//	lamoctl metrics [-ratios] [-server URL]
//	lamoctl prom    [-server URL]
//	lamoctl fleet   [-table] [-server URL]
//	lamoctl rollout -artifact PATH [-digest HEX] [-server URL]
//	lamoctl inspect -artifact FILE
//
// Network subcommands print the daemon's JSON response verbatim, so output
// is byte-deterministic whenever the daemon's is; health and metrics
// -ratios additionally lead with an "artifact=<digest>" line, because the
// served artifact's identity is the first thing an operator checks during
// a rollout. metrics -ratios derives error/hit rates client-side — from
// one decoded snapshot, so the numerator and denominator always belong to
// the same instant. prom prints the Prometheus text exposition. predict
// -trace attaches an X-Request-Id and verifies the daemon echoes it.
// query posts a bulk plan — from -plan file.json or assembled from the
// plan flags — to /v1/query and prints the streamed JSON verbatim, or an
// aligned table with -table, or the per-operator EXPLAIN ANALYZE stats
// with -explain. trace reads the server's span-trace store: listing the
// most recent sampled traces, or fetching one by ID — against a gateway
// the fetch merges every replica's same-ID span tree, and -table renders
// the whole cross-process tree as indented rows.
// fleet and rollout talk to a lamod gateway: fleet prints the membership
// table (per-replica state, digest, latency), rollout drives a rolling
// artifact swap across every replica. inspect reads an artifact file
// directly, without a server, including any build-stage stats the build
// recorded.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"lamofinder/internal/artifact"
	"lamofinder/internal/fleet"
	"lamofinder/internal/obs"
	"lamofinder/internal/query"
	"lamofinder/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		errln(stderr, "usage: lamoctl <predict|query|trace|motifs|health|metrics|prom|fleet|rollout|inspect> [flags]")
		return 2
	}
	switch args[0] {
	case "predict":
		return runPredict(args[1:], stdout, stderr)
	case "query":
		return runQuery(args[1:], stdout, stderr)
	case "trace":
		return runTrace(args[1:], stdout, stderr)
	case "motifs":
		return runGet(args[1:], "/v1/motifs", stdout, stderr)
	case "health":
		return runHealth(args[1:], stdout, stderr)
	case "metrics":
		return runMetrics(args[1:], stdout, stderr)
	case "prom":
		return runGet(args[1:], "/metrics", stdout, stderr)
	case "fleet":
		return runFleet(args[1:], stdout, stderr)
	case "rollout":
		return runRollout(args[1:], stdout, stderr)
	case "inspect":
		return runInspect(args[1:], stdout, stderr)
	default:
		errf(stderr, "lamoctl: unknown subcommand %q (want predict, query, trace, motifs, health, metrics, prom, fleet, rollout, or inspect)\n", args[0])
		return 2
	}
}

// errf and errln write diagnostics to the (injected, testable) stderr; a
// failed diagnostic write has nowhere to be reported.
func errf(w io.Writer, format string, args ...any) { _, _ = fmt.Fprintf(w, format, args...) }
func errln(w io.Writer, args ...any)               { _, _ = fmt.Fprintln(w, args...) }

// client is the only HTTP client lamoctl uses: explicit, with a deadline,
// never the process-global http.DefaultClient.
func client(timeout time.Duration) *http.Client {
	return &http.Client{Timeout: timeout}
}

// getBody GETs u and returns the response body, or a non-zero exit code
// after reporting transport/HTTP errors (including the daemon's JSON
// error bodies) to stderr.
func getBody(c *http.Client, u string, stderr io.Writer) ([]byte, int) {
	resp, err := c.Get(u)
	if err != nil {
		errf(stderr, "lamoctl: %v\n", err)
		return nil, 1
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		errf(stderr, "lamoctl: read response: %v\n", err)
		return nil, 1
	}
	if resp.StatusCode != http.StatusOK {
		errf(stderr, "lamoctl: server returned %s: %s", resp.Status, body)
		return nil, 1
	}
	return body, 0
}

// fetch GETs url and writes the response body through verbatim.
func fetch(c *http.Client, u string, stdout, stderr io.Writer) int {
	body, code := getBody(c, u, stderr)
	if code != 0 {
		return code
	}
	_, _ = stdout.Write(body)
	return 0
}

type serverFlags struct {
	server  *string
	timeout *time.Duration
}

func addServerFlags(fs *flag.FlagSet) serverFlags {
	return serverFlags{
		server:  fs.String("server", "http://127.0.0.1:8077", "lamod base URL"),
		timeout: fs.Duration("timeout", 10*time.Second, "request deadline"),
	}
}

func runGet(args []string, path string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lamoctl "+path, flag.ContinueOnError)
	fs.SetOutput(stderr)
	sf := addServerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		errf(stderr, "lamoctl: unexpected arguments %q\n", fs.Args())
		return 2
	}
	return fetch(client(*sf.timeout), *sf.server+path, stdout, stderr)
}

// runHealth prints /v1/healthz with a leading "artifact=<digest>
// ready=<...>" line: mid-rollout, the digest is the first thing worth
// reading, and against a gateway the same line shows the fleet-uniform
// digest (empty while mixed). The verbatim JSON body follows.
func runHealth(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lamoctl health", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sf := addServerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		errf(stderr, "lamoctl health: unexpected arguments %q\n", fs.Args())
		return 2
	}
	resp, err := client(*sf.timeout).Get(*sf.server + "/v1/healthz")
	if err != nil {
		errf(stderr, "lamoctl: %v\n", err)
		return 1
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		errf(stderr, "lamoctl: read response: %v\n", err)
		return 1
	}
	if resp.StatusCode != http.StatusOK {
		errf(stderr, "lamoctl: server returned %s: %s", resp.Status, body)
		return 1
	}
	// Ready is a bool on a daemon and a count on a gateway; decode loosely
	// and render whichever arrived.
	var hz struct {
		Artifact string `json:"artifact"`
		Ready    any    `json:"ready"`
	}
	if jerr := json.Unmarshal(body, &hz); jerr == nil {
		_, _ = fmt.Fprintf(stdout, "artifact=%s ready=%v\n", hz.Artifact, hz.Ready)
	}
	_, _ = stdout.Write(body)
	return 0
}

// runMetrics prints /v1/metrics verbatim, or with -ratios derives
// error/hit rates. All ratios come from ONE decoded snapshot struct, so
// numerator and denominator are the same point-in-time read — fetching
// the endpoint twice (or deriving from separately scraped values) can
// tear: a request landing between the two reads yields rates over
// mismatched totals, and early versions of this command did exactly that.
func runMetrics(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lamoctl metrics", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sf := addServerFlags(fs)
	ratios := fs.Bool("ratios", false, "derive error/hit rates from a single snapshot instead of printing raw JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		errf(stderr, "lamoctl metrics: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if !*ratios {
		return fetch(client(*sf.timeout), *sf.server+"/v1/metrics", stdout, stderr)
	}
	resp, err := client(*sf.timeout).Get(*sf.server + "/v1/metrics")
	if err != nil {
		errf(stderr, "lamoctl: %v\n", err)
		return 1
	}
	var snap serve.MetricsSnapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		errf(stderr, "lamoctl: decode metrics: %v\n", err)
		return 1
	}
	_, _ = fmt.Fprintf(stdout, "artifact=%s\n", snap.Artifact)
	_, _ = fmt.Fprintf(stdout, "requests=%d errors=%d error_rate=%s\n",
		snap.Requests, snap.Errors, ratio(snap.Errors, snap.Requests))
	_, _ = fmt.Fprintf(stdout, "predictions=%d index_hits=%d index_hit_rate=%s\n",
		snap.Predictions, snap.IndexHits, ratio(snap.IndexHits, snap.Predictions))
	_, _ = fmt.Fprintf(stdout, "cache_hits=%d cache_misses=%d cache_hit_rate=%s\n",
		snap.CacheHits, snap.CacheMisses, ratio(snap.CacheHits, snap.CacheHits+snap.CacheMisses))
	_, _ = fmt.Fprintf(stdout, "access_log_dropped=%d\n", snap.AccessLogDropped)
	if lat, ok := snap.Latency["predict"]; ok {
		_, _ = fmt.Fprintf(stdout, "predict_p50_us=%d predict_p90_us=%d predict_p99_us=%d\n",
			lat.P50Micros, lat.P90Micros, lat.P99Micros)
	}
	return 0
}

// runFleet prints a gateway's /v1/fleet membership table — verbatim JSON
// by default, or aligned columns with -table.
func runFleet(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lamoctl fleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sf := addServerFlags(fs)
	table := fs.Bool("table", false, "render the membership table as aligned columns instead of JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		errf(stderr, "lamoctl fleet: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if !*table {
		return fetch(client(*sf.timeout), *sf.server+"/v1/fleet", stdout, stderr)
	}
	resp, err := client(*sf.timeout).Get(*sf.server + "/v1/fleet")
	if err != nil {
		errf(stderr, "lamoctl: %v\n", err)
		return 1
	}
	var st fleet.FleetStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		errf(stderr, "lamoctl: decode fleet status: %v\n", err)
		return 1
	}
	_, _ = fmt.Fprintf(stdout, "artifact=%s mixed_digest=%v replicas=%d\n",
		st.Artifact, st.MixedDigest, len(st.Replicas))
	tw := tabwriter.NewWriter(stdout, 2, 8, 2, ' ', 0)
	_, _ = fmt.Fprintln(tw, "REPLICA\tSTATE\tDIGEST\tINFLIGHT\tREQUESTS\tERRORS\tP50_US\tP99_US")
	for _, r := range st.Replicas {
		digest := r.Digest
		if len(digest) > 12 {
			digest = digest[:12]
		}
		_, _ = fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\n",
			r.Replica, r.State, digest, r.Inflight, r.Requests, r.Errors,
			r.P50Micros, r.P99Micros)
	}
	if err := tw.Flush(); err != nil {
		errf(stderr, "lamoctl: %v\n", err)
		return 1
	}
	return 0
}

// runRollout drives a gateway's rolling artifact swap and prints the
// gateway's JSON result. The -timeout default is raised: a rollout
// serializes N drain+reload+verify cycles.
func runRollout(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lamoctl rollout", flag.ContinueOnError)
	fs.SetOutput(stderr)
	server := fs.String("server", "http://127.0.0.1:8070", "lamod gateway base URL")
	timeout := fs.Duration("timeout", 5*time.Minute, "request deadline for the whole rollout")
	path := fs.String("artifact", "", "artifact path as seen by each replica (required)")
	digest := fs.String("digest", "", "expected artifact digest; empty lets the first replica pin it")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		errf(stderr, "lamoctl rollout: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if *path == "" {
		errln(stderr, "lamoctl rollout: -artifact is required")
		fs.Usage()
		return 2
	}
	body, err := json.Marshal(fleet.RolloutRequest{Artifact: *path, Digest: *digest})
	if err != nil {
		errf(stderr, "lamoctl rollout: %v\n", err)
		return 1
	}
	resp, err := client(*timeout).Post(*server+"/v1/admin/rollout", "application/json", bytes.NewReader(body))
	if err != nil {
		errf(stderr, "lamoctl: %v\n", err)
		return 1
	}
	out, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		errf(stderr, "lamoctl: read response: %v\n", err)
		return 1
	}
	if resp.StatusCode != http.StatusOK {
		errf(stderr, "lamoctl: gateway returned %s: %s", resp.Status, out)
		return 1
	}
	_, _ = stdout.Write(out)
	return 0
}

// ratio renders num/den to three decimals, or "-" when the denominator is
// zero (no observations, not a zero rate).
func ratio(num, den int64) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", float64(num)/float64(den))
}

// repeatedString collects repeated -protein flags in order.
type repeatedString []string

func (r *repeatedString) String() string { return fmt.Sprint([]string(*r)) }
func (r *repeatedString) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func runPredict(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lamoctl predict", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sf := addServerFlags(fs)
	var proteins repeatedString
	fs.Var(&proteins, "protein", "protein name to score (repeatable)")
	k := fs.Int("k", 0, "top-k functions to return (0 = all)")
	trace := fs.String("trace", "", "X-Request-Id to attach; the response must echo it")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		errf(stderr, "lamoctl predict: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if len(proteins) == 0 {
		errln(stderr, "lamoctl predict: at least one -protein is required")
		fs.Usage()
		return 2
	}
	if *k < 0 {
		errln(stderr, "lamoctl predict: -k must be non-negative")
		return 2
	}
	q := url.Values{}
	for _, p := range proteins {
		q.Add("protein", p)
	}
	if *k > 0 {
		q.Set("k", fmt.Sprint(*k))
	}
	u := *sf.server + "/v1/predict?" + q.Encode()
	if *trace == "" {
		return fetch(client(*sf.timeout), u, stdout, stderr)
	}
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		errf(stderr, "lamoctl: %v\n", err)
		return 1
	}
	req.Header.Set("X-Request-Id", *trace)
	resp, err := client(*sf.timeout).Do(req)
	if err != nil {
		errf(stderr, "lamoctl: %v\n", err)
		return 1
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		errf(stderr, "lamoctl: read response: %v\n", err)
		return 1
	}
	if resp.StatusCode != http.StatusOK {
		errf(stderr, "lamoctl: server returned %s: %s", resp.Status, body)
		return 1
	}
	// The daemon echoes valid client IDs so one ID links the client call,
	// the response and the daemon's access-log line; a mismatch means the
	// trace is broken (or the ID was invalid and got replaced).
	if got := resp.Header.Get("X-Request-Id"); got != *trace {
		errf(stderr, "lamoctl: trace id not echoed: sent %q, got %q\n", *trace, got)
		return 1
	}
	_, _ = stdout.Write(body)
	return 0
}

// runQuery posts a bulk prediction plan to /v1/query. The plan comes from
// -plan file.json or is assembled from the plan flags; the daemon's JSON
// response streams through verbatim (so output is byte-deterministic), or
// -table renders the rows as aligned columns for human eyes, or -explain
// asks the daemon for per-operator execution stats and prints those as a
// table instead of the rows.
func runQuery(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lamoctl query", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sf := addServerFlags(fs)
	table := fs.Bool("table", false, "render result rows as aligned columns instead of JSON")
	explain := fs.Bool("explain", false, "request per-operator execution stats and print the operator table")
	pf := query.AddPlanFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		errf(stderr, "lamoctl query: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if *explain && *table {
		errln(stderr, "lamoctl query: -explain and -table are mutually exclusive: -table prints the result rows, -explain prints the operator stats — pick one")
		return 2
	}
	plan, err := pf.Plan()
	if err != nil {
		errf(stderr, "lamoctl query: %v\n", err)
		return 2
	}
	if *explain {
		plan.Explain = true
	}
	body, err := json.Marshal(plan)
	if err != nil {
		errf(stderr, "lamoctl query: %v\n", err)
		return 1
	}
	resp, err := client(*sf.timeout).Post(*sf.server+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		errf(stderr, "lamoctl: %v\n", err)
		return 1
	}
	out, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		errf(stderr, "lamoctl: read response: %v\n", err)
		return 1
	}
	if resp.StatusCode != http.StatusOK {
		errf(stderr, "lamoctl: server returned %s: %s", resp.Status, out)
		return 1
	}
	if *explain {
		return writeExplainTable(out, stdout, stderr)
	}
	if !*table {
		_, _ = stdout.Write(out)
		return 0
	}
	return writeQueryTable(out, stdout, stderr)
}

// writeExplainTable renders the explain tail of a /v1/query response as
// an aligned operator table. Row counts are deterministic (plan + model
// decide them); busy_us is CPU occupancy summed across batch workers, so
// under parallel execution the column can legitimately sum past wall_us.
func writeExplainTable(body []byte, stdout, stderr io.Writer) int {
	var res struct {
		Artifact string       `json:"artifact"`
		RowCount int          `json:"row_count"`
		Explain  *query.Stats `json:"explain"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		errf(stderr, "lamoctl query: decode response: %v\n", err)
		return 1
	}
	if res.Explain == nil {
		errln(stderr, "lamoctl query: response carries no explain stats (is the daemon older than the plan's \"explain\" field?)")
		return 1
	}
	_, _ = fmt.Fprintf(stdout, "artifact=%s rows=%d wall_us=%d\n",
		res.Artifact, res.RowCount, res.Explain.WallUS)
	tw := tabwriter.NewWriter(stdout, 2, 8, 2, ' ', 0)
	_, _ = fmt.Fprintln(tw, "OP\tROWS_IN\tROWS_OUT\tBUSY_US")
	for _, o := range res.Explain.Ops {
		_, _ = fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", o.Op, o.RowsIn, o.RowsOut, o.BusyUS)
	}
	if err := tw.Flush(); err != nil {
		errf(stderr, "lamoctl: %v\n", err)
		return 1
	}
	return 0
}

// runTrace reads a server's span-trace store. With no argument it lists
// the most recent sampled traces (GET /v1/traces); with a trace ID it
// fetches that trace (GET /v1/traces/{id}) — against a gateway the fetch
// also carries every replica-side span tree recorded under the same ID.
// -table renders either response as aligned rows; for a single trace that
// is the indented span tree, with replica trees spliced in under the
// gateway attempt span that caused them.
func runTrace(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lamoctl trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sf := addServerFlags(fs)
	n := fs.Int("n", 0, "max traces to list (0 = server default)")
	table := fs.Bool("table", false, "render the trace(s) as aligned rows instead of JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Accept the trace ID before or after the flags (flag parsing stops at
	// the first positional): lift the ID and re-parse what follows it.
	id := ""
	if fs.NArg() > 0 {
		id = fs.Arg(0)
		if err := fs.Parse(fs.Args()[1:]); err != nil {
			return 2
		}
		if fs.NArg() > 0 {
			errf(stderr, "lamoctl trace: want at most one trace ID, got also %q\n", fs.Args())
			return 2
		}
	}
	c := client(*sf.timeout)
	if id == "" {
		u := *sf.server + "/v1/traces"
		if *n > 0 {
			u += "?n=" + fmt.Sprint(*n)
		}
		if !*table {
			return fetch(c, u, stdout, stderr)
		}
		body, code := getBody(c, u, stderr)
		if code != 0 {
			return code
		}
		return writeTraceListTable(body, stdout, stderr)
	}
	u := *sf.server + "/v1/traces/" + url.PathEscape(id)
	if !*table {
		return fetch(c, u, stdout, stderr)
	}
	body, code := getBody(c, u, stderr)
	if code != 0 {
		return code
	}
	return writeTraceTable(body, stdout, stderr)
}

// writeTraceListTable renders GET /v1/traces (newest first) as columns.
func writeTraceListTable(body []byte, stdout, stderr io.Writer) int {
	var list struct {
		Traces []obs.TraceSummary `json:"traces"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		errf(stderr, "lamoctl trace: decode listing: %v\n", err)
		return 1
	}
	tw := tabwriter.NewWriter(stdout, 2, 8, 2, ' ', 0)
	_, _ = fmt.Fprintln(tw, "TRACE\tROOT\tSPANS\tDROPPED\tDUR_US")
	for _, s := range list.Traces {
		_, _ = fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\n", s.Trace, s.Root, s.Spans, s.Dropped, s.DurUS)
	}
	if err := tw.Flush(); err != nil {
		errf(stderr, "lamoctl: %v\n", err)
		return 1
	}
	return 0
}

// replicaSide is the gateway merge's per-replica entry; absent (empty)
// in a daemon's response, which lets one decode shape cover both.
type replicaSide struct {
	Replica      string        `json:"replica"`
	RemoteParent int32         `json:"remote_parent"`
	Spans        []obs.SpanOut `json:"spans"`
}

// writeTraceTable renders one fetched trace as an indented span tree. It
// accepts both the daemon shape (remote_parent + spans) and the gateway
// shape (spans + replicas): each replica's tree is spliced in directly
// under the gateway span its remote_parent names, so a hedged request
// reads top-to-bottom as routing decision, attempts, and the winning
// replica's handler/operator spans in their causal place.
func writeTraceTable(body []byte, stdout, stderr io.Writer) int {
	var tr struct {
		Trace        string        `json:"trace"`
		RemoteParent *int32        `json:"remote_parent"`
		Dropped      int32         `json:"dropped_spans"`
		Spans        []obs.SpanOut `json:"spans"`
		Replicas     []replicaSide `json:"replicas"`
	}
	if err := json.Unmarshal(body, &tr); err != nil {
		errf(stderr, "lamoctl trace: decode trace: %v\n", err)
		return 1
	}
	_, _ = fmt.Fprintf(stdout, "trace=%s spans=%d", tr.Trace, len(tr.Spans))
	if tr.RemoteParent != nil && *tr.RemoteParent >= 0 {
		_, _ = fmt.Fprintf(stdout, " remote_parent=%d", *tr.RemoteParent)
	}
	if tr.Dropped > 0 {
		_, _ = fmt.Fprintf(stdout, " dropped=%d", tr.Dropped)
	}
	_, _ = fmt.Fprintln(stdout)
	byParent := make(map[int32][]int)
	for i := range tr.Replicas {
		rp := tr.Replicas[i].RemoteParent
		byParent[rp] = append(byParent[rp], i)
	}
	tw := tabwriter.NewWriter(stdout, 2, 8, 2, ' ', 0)
	_, _ = fmt.Fprintln(tw, "SPAN\tSTART_US\tDUR_US\tROWS\tDETAIL")
	writeSpanRows(tw, tr.Spans, 0, func(id int32, depth int) {
		for _, i := range byParent[id] {
			rep := tr.Replicas[i]
			_, _ = fmt.Fprintf(tw, "%sreplica %s\t\t\t\t\n", indent(depth+1), rep.Replica)
			writeSpanRows(tw, rep.Spans, depth+2, nil)
		}
	})
	if err := tw.Flush(); err != nil {
		errf(stderr, "lamoctl: %v\n", err)
		return 1
	}
	return 0
}

func indent(depth int) string { return strings.Repeat("  ", depth) }

// writeSpanRows prints spans as indented rows. Spans arrive in creation
// order, so every parent precedes its children and one forward pass
// resolves depths. after, when non-nil, runs once per span so the caller
// can splice nested replica trees in causal position.
func writeSpanRows(tw *tabwriter.Writer, spans []obs.SpanOut, base int, after func(id int32, depth int)) {
	depth := make(map[int32]int, len(spans))
	for _, sp := range spans {
		d := base
		if pd, ok := depth[sp.Parent]; ok {
			d = pd + 1
		}
		depth[sp.ID] = d
		rows := ""
		if sp.RowsIn != 0 || sp.RowsOut != 0 {
			rows = fmt.Sprintf("%d/%d", sp.RowsIn, sp.RowsOut)
		}
		_, _ = fmt.Fprintf(tw, "%s%s\t%d\t%d\t%s\t%s\n",
			indent(d), sp.Name, sp.StartUS, sp.DurUS, rows, sp.Detail)
		if after != nil {
			after(sp.ID, d)
		}
	}
}

// writeQueryTable renders a /v1/query response as aligned columns. Cells
// decode as json.Number so scores print with the daemon's exact digits
// instead of a float64 round trip's.
func writeQueryTable(body []byte, stdout, stderr io.Writer) int {
	var res struct {
		Artifact string            `json:"artifact"`
		Columns  []string          `json:"columns"`
		RowCount int               `json:"row_count"`
		Rows     []json.RawMessage `json:"rows"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		errf(stderr, "lamoctl query: decode response: %v\n", err)
		return 1
	}
	_, _ = fmt.Fprintf(stdout, "artifact=%s rows=%d\n", res.Artifact, res.RowCount)
	tw := tabwriter.NewWriter(stdout, 2, 8, 2, ' ', 0)
	for i, col := range res.Columns {
		if i > 0 {
			_, _ = fmt.Fprint(tw, "\t")
		}
		_, _ = fmt.Fprint(tw, strings.ToUpper(col))
	}
	_, _ = fmt.Fprintln(tw)
	for _, raw := range res.Rows {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.UseNumber()
		var cells []any
		if err := dec.Decode(&cells); err != nil {
			errf(stderr, "lamoctl query: decode row: %v\n", err)
			return 1
		}
		for i, cell := range cells {
			if i > 0 {
				_, _ = fmt.Fprint(tw, "\t")
			}
			_, _ = fmt.Fprintf(tw, "%v", cell)
		}
		_, _ = fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		errf(stderr, "lamoctl: %v\n", err)
		return 1
	}
	return 0
}

// inspectSummary is lamoctl's offline view of an artifact file.
type inspectSummary struct {
	Artifact     string        `json:"artifact"`
	Format       int           `json:"format"`
	Indexed      bool          `json:"indexed"`
	Dataset      string        `json:"dataset"`
	Note         string        `json:"note,omitempty"`
	Proteins     int           `json:"proteins"`
	Interactions int           `json:"interactions"`
	Functions    int           `json:"functions"`
	Terms        int           `json:"terms"`
	BorderTerms  int           `json:"border_terms"`
	MinDirect    int           `json:"min_direct"`
	Motifs       int           `json:"motifs"`
	Coverage     int           `json:"coverage"`
	BuildStats   []inspectStat `json:"build_stats,omitempty"`
}

// inspectStat is one recorded build stage. Durations are microseconds for
// consistency with the serving metrics.
type inspectStat struct {
	Stage       string `json:"stage"`
	WallMicros  int64  `json:"wall_micros"`
	Items       int64  `json:"items"`
	Workers     int    `json:"workers"`
	BusyMicros  int64  `json:"busy_micros,omitempty"`
	UtilPercent int    `json:"util_percent,omitempty"`
}

func runInspect(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lamoctl inspect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	path := fs.String("artifact", "", "artifact file to inspect (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		errf(stderr, "lamoctl inspect: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if *path == "" {
		errln(stderr, "lamoctl inspect: -artifact is required")
		fs.Usage()
		return 2
	}
	art, err := artifact.LoadFile(*path)
	if err != nil {
		errf(stderr, "lamoctl inspect: %v\n", err)
		return 1
	}
	digest, err := art.Digest()
	if err != nil {
		errf(stderr, "lamoctl inspect: %v\n", err)
		return 1
	}
	format := artifact.Version1
	if art.Index != nil {
		format = artifact.Version
	}
	if len(art.Stats) > 0 {
		format += 2 // v3 = v1 + build stats, v4 = v2 + build stats
	}
	stats := make([]inspectStat, 0, len(art.Stats))
	for _, st := range art.Stats {
		is := inspectStat{
			Stage:      st.Name,
			WallMicros: st.Wall.Microseconds(),
			Items:      st.Items,
			Workers:    st.Workers,
			BusyMicros: st.Busy.Microseconds(),
		}
		if st.Busy > 0 && st.Wall > 0 && st.Workers > 0 {
			is.UtilPercent = int(100 * st.Busy.Nanoseconds() /
				(st.Wall.Nanoseconds() * int64(st.Workers)))
		}
		stats = append(stats, is)
	}
	sum := inspectSummary{
		Artifact:     digest,
		Format:       format,
		Indexed:      art.Index != nil,
		Dataset:      art.Dataset,
		Note:         art.Note,
		Proteins:     art.Graph.N(),
		Interactions: art.Graph.M(),
		Functions:    art.NumFunctions,
		Terms:        art.Ontology.NumTerms(),
		BorderTerms:  len(art.Border),
		MinDirect:    art.MinDirect,
		Motifs:       len(art.Motifs),
		Coverage:     art.NewScorer().Coverage(),
		BuildStats:   stats,
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		errf(stderr, "lamoctl inspect: %v\n", err)
		return 1
	}
	_, _ = stdout.Write(buf.Bytes())
	return 0
}

// Command motiffind mines network motifs from a PPI edge list: frequent
// connected patterns (beam miner to meso-scale, or exact ESU census for
// small sizes) with a randomized-network uniqueness test.
//
// Usage:
//
//	motiffind -edges ppi.tsv [-minfreq N] [-maxsize K] [-esu K] [-uniq U]
package main

import (
	"flag"
	"fmt"
	"os"

	"lamofinder/internal/dataset"
	"lamofinder/internal/graph"
	"lamofinder/internal/motif"
	"lamofinder/internal/randnet"

	"math/rand"
)

func main() {
	edges := flag.String("edges", "", "interaction edge list; empty = synthetic scale-free network")
	n := flag.Int("n", 1000, "synthetic network size (when -edges is empty)")
	minFreq := flag.Int("minfreq", 20, "frequency threshold")
	maxSize := flag.Int("maxsize", 8, "maximum motif size (beam miner)")
	esu := flag.Int("esu", 0, "run the exact ESU census at this size instead of the beam miner")
	nemo := flag.Bool("nemo", false, "use the NeMoFinder-style repeated-tree miner")
	nullNets := flag.Int("nullnets", 10, "randomized networks for the uniqueness test")
	uniq := flag.Float64("uniq", 0.9, "uniqueness threshold for the report")
	zscores := flag.Bool("z", false, "also report Milo-style z-scores")
	seed := flag.Int64("seed", 1, "random seed")
	top := flag.Int("top", 25, "motifs to print")
	flag.Parse()

	var net *graph.Graph
	if *edges != "" {
		f, err := os.Open(*edges)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() { _ = f.Close() }() // read-only open; close error is unactionable
		net, _, err = dataset.LoadEdgeList(f)
		if err != nil {
			fatalf("%v", err)
		}
	} else {
		rng := rand.New(rand.NewSource(*seed))
		net = randnet.BarabasiAlbert(*n, 3, 2, rng)
		fmt.Printf("synthetic Barabasi-Albert network\n")
	}
	fmt.Printf("network: %d vertices, %d edges\n", net.N(), net.M())

	var motifs []*motif.Motif
	switch {
	case *esu > 0:
		fmt.Printf("exact ESU census at size %d...\n", *esu)
		motifs = motif.CensusESU(net, *esu, 200)
	case *nemo:
		cfg := motif.DefaultNeMoConfig()
		cfg.MinFreq = *minFreq
		cfg.MaxSize = *maxSize
		cfg.Seed = *seed
		fmt.Println("NeMoFinder-style repeated-tree mining...")
		motifs = motif.NeMoFind(net, cfg)
	default:
		cfg := motif.DefaultConfig()
		cfg.MinFreq = *minFreq
		cfg.MaxSize = *maxSize
		cfg.Seed = *seed
		motifs = motif.Find(net, cfg)
	}
	fmt.Printf("%d pattern classes\n", len(motifs))

	nullCfg := motif.DefaultUniquenessConfig()
	nullCfg.Networks = *nullNets
	nullCfg.Seed = *seed
	motif.ScoreUniqueness(net, motifs, nullCfg)
	var zs []motif.ZScore
	if *zscores {
		zs = motif.ScoreZ(net, motifs, nullCfg)
	}

	printed := 0
	for i, m := range motifs {
		if m.Uniqueness < *uniq {
			continue
		}
		if printed >= *top {
			fmt.Println("  ...")
			break
		}
		if zs != nil {
			fmt.Printf("  %s z=%.1f (rand %.1f±%.1f)\n", m, zs[i].Z, zs[i].RandMean, zs[i].RandStd)
		} else {
			fmt.Printf("  %s\n", m)
		}
		printed++
	}
	if printed == 0 {
		fmt.Printf("no motifs with uniqueness >= %.2f\n", *uniq)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "motiffind: "+format+"\n", args...)
	os.Exit(1)
}

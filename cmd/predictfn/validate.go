package main

import (
	"flag"
	"fmt"
	"io"
)

// options is predictfn's parsed and validated command line.
type options struct {
	proteins    int
	edges       int
	seed        int64
	quick       bool
	noProdistin bool
	gibbs       bool
	// protein switches from the Figure-9 comparison table to scoring one
	// protein offline; topk bounds that ranking.
	protein string
	topk    int
}

// minProteins is the smallest benchmark that can mine anything: below this
// the planted-template pools don't fit and the informative-FC border is
// empty, so the pipeline would "succeed" with a model that predicts nothing.
const minProteins = 50

// parseFlags parses and validates predictfn's arguments. It returns
// flag.ErrHelp for -h/-help and a descriptive error (already echoed to
// stderr by the FlagSet where applicable) for anything malformed — the
// caller exits 2 rather than proceeding with a zero-value config.
func parseFlags(args []string, stderr io.Writer) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("predictfn", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.IntVar(&o.proteins, "proteins", 0, "override protein count (0 = preset)")
	fs.IntVar(&o.edges, "edges", 0, "override interaction count (0 = preset)")
	fs.Int64Var(&o.seed, "seed", 0, "override dataset seed (0 = preset)")
	fs.BoolVar(&o.quick, "quick", false, "reduced-scale preset")
	fs.BoolVar(&o.noProdistin, "noprodistin", false, "skip PRODISTIN (O(n^3) tree)")
	fs.BoolVar(&o.gibbs, "gibbs", false, "add the Gibbs-sampling MRF as a sixth method")
	fs.StringVar(&o.protein, "protein", "", "score this protein offline instead of the comparison table")
	fs.IntVar(&o.topk, "topk", 0, "top-k functions in -protein mode (0 = all)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	return o, nil
}

func (o *options) validate() error {
	if o.proteins < 0 {
		return fmt.Errorf("-proteins must be non-negative, got %d", o.proteins)
	}
	if o.edges < 0 {
		return fmt.Errorf("-edges must be non-negative, got %d", o.edges)
	}
	if o.proteins > 0 && o.proteins < minProteins {
		return fmt.Errorf("-proteins %d is below the minimum benchmark size %d", o.proteins, minProteins)
	}
	if o.topk < 0 {
		return fmt.Errorf("-topk must be non-negative, got %d", o.topk)
	}
	if o.topk > 0 && o.protein == "" {
		return fmt.Errorf("-topk only applies with -protein")
	}
	return nil
}

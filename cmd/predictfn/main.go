// Command predictfn compares the five protein-function prediction methods
// (labeled motif, MRF, Chi-square, NC, PRODISTIN) under leave-one-out on
// the synthetic MIPS-like benchmark, printing the Figure-9 precision/recall
// table. With -protein it instead scores one protein offline through the
// same mined model the lamod daemon serves, so its output can be checked
// byte-for-byte against /v1/predict.
//
// Usage:
//
//	predictfn [-proteins N] [-edges M] [-seed S] [-quick] [-noprodistin] [-gibbs]
//	predictfn -protein NAME [-topk K] [dataset flags as above]
//
// Malformed flags or an invalid dataset configuration exit 2 with usage;
// the tool never proceeds on a zero-value config.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"lamofinder/internal/experiments"
	"lamofinder/internal/label"
	"lamofinder/internal/predict"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	opts, err := parseFlags(args, os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		fmt.Fprintf(os.Stderr, "predictfn: %v\n", err)
		return 2
	}

	cfg := experiments.DefaultFigure9Config()
	if opts.quick {
		cfg = experiments.QuickFigure9Config()
	}
	if opts.proteins > 0 {
		cfg.MIPS.Proteins = opts.proteins
	}
	if opts.edges > 0 {
		cfg.MIPS.Edges = opts.edges
	}
	if opts.seed != 0 {
		cfg.MIPS.Seed = opts.seed
	}
	if opts.noProdistin {
		cfg.IncludeProdistin = false
	}
	if opts.gibbs {
		cfg.IncludeGibbs = true
	}

	start := time.Now()
	if opts.protein != "" {
		if code := scoreProtein(cfg, opts.protein, opts.topk); code != 0 {
			return code
		}
	} else {
		if err := experiments.Figure9(cfg).WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "predictfn: %v\n", err)
			return 1
		}
	}
	fmt.Printf("[%v]\n", time.Since(start).Round(time.Millisecond))
	return 0
}

// scoreProtein runs the front half of the Figure-9 pipeline (the same
// mining and labeling `lamod build` packages into an artifact) and prints
// the named protein's top-k functions: one "FC-term<TAB>score" line per
// rank, with the score in Go's shortest round-trip form — the float text
// encoding/json uses, so lines compare equal against the daemon's output.
func scoreProtein(cfg experiments.Figure9Config, name string, topk int) int {
	mined := experiments.MineLabeled(cfg)
	m := mined.MIPS
	net := m.Task.Network
	p := -1
	for v := 0; v < net.N(); v++ {
		if net.Name(v) == name {
			p = v
			break
		}
	}
	if p < 0 {
		fmt.Fprintf(os.Stderr, "predictfn: protein %q is not in the dataset\n", name)
		return 1
	}
	scorer := label.NewScorer(m.Task, mined.Labeled)
	for _, rk := range predict.TopK(scorer.Scores(p), topk) {
		fmt.Printf("%s\t%s\n", m.Ontology.ID(m.CategoryTerm[rk.Function]),
			strconv.FormatFloat(rk.Score, 'g', -1, 64))
	}
	return 0
}

// Command predictfn compares the five protein-function prediction methods
// (labeled motif, MRF, Chi-square, NC, PRODISTIN) under leave-one-out on
// the synthetic MIPS-like benchmark, printing the Figure-9 precision/recall
// table.
//
// Usage:
//
//	predictfn [-proteins N] [-edges M] [-seed S] [-quick] [-noprodistin]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lamofinder/internal/experiments"
)

func main() {
	proteins := flag.Int("proteins", 0, "override protein count (0 = preset)")
	edges := flag.Int("edges", 0, "override interaction count (0 = preset)")
	seed := flag.Int64("seed", 0, "override dataset seed (0 = preset)")
	quick := flag.Bool("quick", false, "reduced-scale preset")
	noProdistin := flag.Bool("noprodistin", false, "skip PRODISTIN (O(n^3) tree)")
	gibbs := flag.Bool("gibbs", false, "add the Gibbs-sampling MRF as a sixth method")
	flag.Parse()

	cfg := experiments.DefaultFigure9Config()
	if *quick {
		cfg = experiments.QuickFigure9Config()
	}
	if *proteins > 0 {
		cfg.MIPS.Proteins = *proteins
	}
	if *edges > 0 {
		cfg.MIPS.Edges = *edges
	}
	if *seed != 0 {
		cfg.MIPS.Seed = *seed
	}
	if *noProdistin {
		cfg.IncludeProdistin = false
	}
	if *gibbs {
		cfg.IncludeGibbs = true
	}
	start := time.Now()
	if err := experiments.Figure9(cfg).WriteText(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "predictfn: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("[%v]\n", time.Since(start).Round(time.Millisecond))
}

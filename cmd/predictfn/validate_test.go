package main

import (
	"errors"
	"flag"
	"strings"
	"testing"
)

func TestParseFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring of the error, "" = must succeed
	}{
		{"empty", nil, ""},
		{"quick preset", []string{"-quick", "-noprodistin"}, ""},
		{"overrides", []string{"-proteins", "600", "-edges", "820", "-seed", "7"}, ""},
		{"protein mode", []string{"-quick", "-protein", "M0000", "-topk", "5"}, ""},
		{"protein mode all k", []string{"-protein", "M0001"}, ""},
		{"unknown flag", []string{"-bogus"}, "not defined"},
		{"positional args", []string{"stray"}, "unexpected arguments"},
		{"malformed int", []string{"-proteins", "many"}, "invalid value"},
		{"negative proteins", []string{"-proteins", "-5"}, "non-negative"},
		{"negative edges", []string{"-edges", "-1"}, "non-negative"},
		{"too few proteins", []string{"-proteins", "10"}, "below the minimum"},
		{"negative topk", []string{"-protein", "M0000", "-topk", "-1"}, "non-negative"},
		{"topk without protein", []string{"-topk", "3"}, "only applies with -protein"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stderr strings.Builder
			opts, err := parseFlags(tc.args, &stderr)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("parseFlags(%q) = %v", tc.args, err)
				}
				if opts == nil {
					t.Fatalf("parseFlags(%q) returned nil options", tc.args)
				}
				return
			}
			if err == nil {
				t.Fatalf("parseFlags(%q) accepted invalid input: %+v", tc.args, opts)
			}
			// The FlagSet reports parse errors itself; ours come back verbatim.
			if !strings.Contains(err.Error(), tc.wantErr) && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Fatalf("parseFlags(%q) error %q / stderr %q, want mention of %q",
					tc.args, err, stderr.String(), tc.wantErr)
			}
		})
	}
}

func TestParseFlagsHelp(t *testing.T) {
	var stderr strings.Builder
	_, err := parseFlags([]string{"-h"}, &stderr)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h: err = %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(stderr.String(), "-protein") {
		t.Fatalf("usage not printed: %q", stderr.String())
	}
}

func TestParseFlagsValues(t *testing.T) {
	var stderr strings.Builder
	opts, err := parseFlags([]string{"-quick", "-proteins", "600", "-protein", "M0042", "-topk", "4"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !opts.quick || opts.proteins != 600 || opts.protein != "M0042" || opts.topk != 4 {
		t.Fatalf("opts = %+v", opts)
	}
}

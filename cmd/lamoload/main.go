// Command lamoload is the deterministic load generator for a running lamod
// daemon. It derives its request stream from the served artifact file and a
// seed — the same artifact, seed, and flags always produce the same
// sequence of /v1/predict queries — then drives the daemon in closed-loop
// (fixed concurrency) or open-loop (fixed arrival rate) mode and reports
// latency percentiles and throughput in the BENCH_*.json trajectory schema
// (internal/benchfmt), beside the microbenchmarks cmd/benchjson records.
//
// Usage:
//
//	lamoload -artifact FILE [-server URL] [-workload predict|query]
//	         [-n N] [-c C] [-rate R]
//	         [-k K] [-batch B] [-seed S] [-timeout D]
//	         [-out PATH | -merge-into PATH] [-name PREFIX]
//
// Modes:
//
//	-rate 0 (default): closed loop — C workers issue requests back to back,
//	        so concurrency is fixed and arrival adapts to the daemon.
//	-rate R: open loop — requests start every 1/R seconds regardless of
//	        completions, so queueing delay shows up in the percentiles.
//
// -workload query drives POST /v1/query with a seeded mix of bulk plans
// (full scans, degree-filtered top-k, grouped top-k, pinned batches)
// instead of single-protein predicts. Its results carry query_-prefixed
// names (PREFIX/query_p50 … query_throughput) plus PREFIX/query_ns_per_row
// — wall_ns divided by result rows streamed, the reciprocal of rows/sec —
// so bulk-scoring throughput lands in the same BENCH_*.json trajectory the
// predict percentiles do, diffable against any earlier snapshot.
//
// The report encodes each percentile as one benchfmt result
// (PREFIX/p50 … PREFIX/max, ns_per_op = latency) plus PREFIX/throughput,
// whose ns_per_op is wall_ns/requests — the reciprocal of requests/sec.
// After the run it also scrapes the daemon's /v1/metrics and records the
// server-side predict percentiles as PREFIX/daemon_p50 … daemon_p99, so
// the trajectory carries both sides of the wire: the gap between client
// and daemon percentiles is network plus queueing, not scoring.
//
// -server may also point at a lamod gateway (the fleet router). lamoload
// detects the fleet from the metrics body's fleet:true marker and then
// records PREFIX/fleet_p50 … fleet_p99 (router-side predict latency,
// retries and hedging included) alongside PREFIX/daemon_p50 … daemon_p99
// derived from the merged per-replica upstream histograms — three tiers
// per run: client, router, replicas. The healthz identity check works
// unchanged because the gateway reports the fleet-uniform artifact digest.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lamofinder/internal/artifact"
	"lamofinder/internal/benchfmt"
	"lamofinder/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// errf and errln write diagnostics to the (injected, testable) stderr; a
// failed diagnostic write has nowhere to be reported.
func errf(w io.Writer, format string, args ...any) { _, _ = fmt.Fprintf(w, format, args...) }
func errln(w io.Writer, args ...any)               { _, _ = fmt.Fprintln(w, args...) }

func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("lamoload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	artPath := fs.String("artifact", "", "served artifact file: protein-name source and identity check (required)")
	server := fs.String("server", "http://127.0.0.1:8077", "lamod base URL")
	workload := fs.String("workload", "predict", "request shape: predict (GET /v1/predict) or query (POST /v1/query bulk plans)")
	n := fs.Int("n", 1000, "total requests to send")
	c := fs.Int("c", 4, "closed-loop worker count (also the connection pool size)")
	rate := fs.Float64("rate", 0, "open-loop arrivals per second (0 = closed loop)")
	k := fs.Int("k", 5, "top-k functions per query")
	batch := fs.Int("batch", 1, "proteins per request")
	seed := fs.Int64("seed", 1, "request-stream seed")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request deadline")
	out := fs.String("out", "-", `snapshot output path ("-" = stdout)`)
	mergeInto := fs.String("merge-into", "", "append results to this existing BENCH_*.json instead of writing -out")
	traceSample := fs.Int("trace-sample", 0, "attach X-Trace-Sample: 1 to one request in N, opting it into server-side span tracing (0 = none)")
	name := fs.String("name", "", "result name prefix in the snapshot (default LoadPredict, or LoadQuery with -workload query)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		errf(stderr, "lamoload: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if *artPath == "" {
		errln(stderr, "lamoload: -artifact is required")
		fs.Usage()
		return 2
	}
	if *n <= 0 || *c <= 0 || *batch <= 0 || *rate < 0 || *traceSample < 0 {
		errln(stderr, "lamoload: -n, -c, and -batch must be positive; -rate and -trace-sample non-negative")
		return 2
	}
	if *workload != "predict" && *workload != "query" {
		errf(stderr, "lamoload: -workload must be predict or query, got %q\n", *workload)
		return 2
	}
	if *name == "" {
		*name = "LoadPredict"
		if *workload == "query" {
			*name = "LoadQuery"
		}
	}

	art, err := artifact.LoadFile(*artPath)
	if err != nil {
		errf(stderr, "lamoload: %v\n", err)
		return 1
	}
	digest, err := art.Digest()
	if err != nil {
		errf(stderr, "lamoload: %v\n", err)
		return 1
	}
	names := make([]string, art.Graph.N())
	for p := range names {
		names[p] = art.Graph.Name(p)
	}

	// One explicit client: pooled connections sized to the worker count,
	// never the process-global transport.
	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        2 * *c,
			MaxIdleConnsPerHost: 2 * *c,
		},
	}
	if err := checkServedArtifact(client, *server, digest); err != nil {
		errf(stderr, "lamoload: %v\n", err)
		return 1
	}

	route, prefix := "predict", ""
	var reqs []request
	if *workload == "query" {
		route, prefix = "query", "query_"
		reqs = queryStream(*server, names, *n, *batch, *k, *seed)
	} else {
		reqs = predictStream(*server, names, *n, *batch, *k, *seed)
	}
	if *traceSample > 0 {
		// Deterministic head marking: the same tuple plus -trace-sample
		// names the same traced subset, like everything else in the stream.
		for i := 0; i < len(reqs); i += *traceSample {
			reqs[i].sample = true
		}
	}
	mode := "closed-loop"
	if *rate > 0 {
		mode = "open-loop"
	}
	errf(stderr, "lamoload: %d %s requests, %s, batch=%d k=%d seed=%d against %s\n",
		*n, *workload, mode, *batch, *k, *seed, *server)

	var lat []time.Duration
	var rows, errs int64
	var wall time.Duration
	if *rate > 0 {
		lat, rows, errs, wall = runOpenLoop(client, reqs, *rate)
	} else {
		lat, rows, errs, wall = runClosedLoop(client, reqs, *c)
	}
	if errs > 0 {
		errf(stderr, "lamoload: %d of %d requests failed\n", errs, *n)
		return 1
	}

	results := summarize(*name, prefix, lat, wall)
	rps := float64(len(lat)) / wall.Seconds()
	errf(stderr, "lamoload: %d ok in %v (%.1f req/s)  p50=%v p90=%v p99=%v max=%v\n",
		len(lat), wall.Round(time.Millisecond), rps,
		percentile(lat, 0.50).Round(time.Microsecond),
		percentile(lat, 0.90).Round(time.Microsecond),
		percentile(lat, 0.99).Round(time.Microsecond),
		lat[len(lat)-1].Round(time.Microsecond))
	if *workload == "query" && rows > 0 {
		// rows/sec is the headline number for bulk scoring; the snapshot
		// stores its reciprocal (ns per row) to stay in benchfmt units.
		results = append(results, benchfmt.Result{
			Name: *name + "/query_ns_per_row", Procs: 1,
			Iterations: rows, NsPerOp: float64(wall.Nanoseconds()) / float64(rows),
		})
		errf(stderr, "lamoload: %d result rows (%.0f rows/s)\n",
			rows, float64(rows)/wall.Seconds())
	}

	daemon, err := daemonResults(client, *server, *name, route)
	if err != nil {
		errf(stderr, "lamoload: daemon metrics: %v\n", err)
		return 1
	}
	if daemon == nil {
		errf(stderr, "lamoload: daemon reports no %s latency; skipping daemon_* results\n", route)
	} else {
		// Against a gateway the first triple is fleet_* (router-side) and a
		// second daemon_* triple follows from the merged replica histograms.
		for i := 0; i+2 < len(daemon); i += 3 {
			tier := strings.TrimSuffix(strings.TrimPrefix(daemon[i].Name, *name+"/"), "_p50")
			errf(stderr, "lamoload: %s-side predict p50=%dµs p90=%dµs p99=%dµs\n", tier,
				int64(daemon[i].NsPerOp)/1e3, int64(daemon[i+1].NsPerOp)/1e3, int64(daemon[i+2].NsPerOp)/1e3)
		}
		results = append(results, daemon...)
	}

	command := "lamoload " + strings.Join(args, " ")
	if *mergeInto != "" {
		if err := benchfmt.MergeFile(*mergeInto, command, results); err != nil {
			errf(stderr, "lamoload: %v\n", err)
			return 1
		}
		errf(stderr, "lamoload: merged %d results into %s\n", len(results), *mergeInto)
		return 0
	}
	snap := benchfmt.NewSnapshot(command, results)
	if err := snap.WriteFile(*out); err != nil {
		errf(stderr, "lamoload: %v\n", err)
		return 1
	}
	if *out != "-" {
		errf(stderr, "lamoload: wrote %s\n", *out)
	}
	return 0
}

// checkServedArtifact refuses to measure a daemon serving a different
// model than the one the request stream was derived from: the numbers
// would not be comparable to anything.
func checkServedArtifact(client *http.Client, server, digest string) error {
	resp, err := client.Get(server + "/v1/healthz")
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: %s: %s", resp.Status, body)
	}
	if !strings.Contains(string(body), `"artifact":"`+digest+`"`) {
		return fmt.Errorf("daemon serves a different artifact than %s (want %s): %s", server, digest, body)
	}
	return nil
}

// serverSnapshot is the union of a daemon's and a gateway's /v1/metrics
// body. A daemon's snapshot has no "fleet" key, which decodes as false;
// a gateway's carries fleet:true plus the merged upstream latency, which
// is how lamoload tells the two apart without being told.
type serverSnapshot struct {
	serve.MetricsSnapshot
	Fleet    bool               `json:"fleet"`
	Upstream serve.RouteLatency `json:"upstream"`
}

// daemonResults scrapes /v1/metrics once and renders the server's own
// route percentiles as benchfmt results. These come from power-of-two
// histograms, so they are upper bounds with one bucket of resolution —
// coarser than the client-side order statistics, but free of network and
// client-scheduling noise. Against a plain daemon it emits
// PREFIX/daemon_p50..p99. Against a lamod gateway driving the predict
// route it emits PREFIX/fleet_p50..p99 (router-side, retries and hedges
// included) AND PREFIX/daemon_p50..p99 from the merged per-replica
// upstream histograms, so the trajectory carries all three tiers: client,
// router, replicas. The query route has no merged upstream histogram, so
// there it always reports the single daemon_* triple. Returns nil (no
// error) when the route has no observations.
func daemonResults(client *http.Client, server, prefix, route string) ([]benchfmt.Result, error) {
	resp, err := client.Get(server + "/v1/metrics")
	if err != nil {
		return nil, err
	}
	var snap serverSnapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	res := func(tier, suffix string, count, micros int64) benchfmt.Result {
		return benchfmt.Result{
			Name: prefix + "/" + tier + "_" + suffix, Procs: 1,
			Iterations: count, NsPerOp: float64(micros) * 1e3,
		}
	}
	lat, ok := snap.Latency[route]
	if !ok || lat.Count == 0 {
		return nil, nil
	}
	if !snap.Fleet || route != "predict" {
		return []benchfmt.Result{
			res("daemon", "p50", lat.Count, lat.P50Micros),
			res("daemon", "p90", lat.Count, lat.P90Micros),
			res("daemon", "p99", lat.Count, lat.P99Micros),
		}, nil
	}
	out := []benchfmt.Result{
		res("fleet", "p50", lat.Count, lat.P50Micros),
		res("fleet", "p90", lat.Count, lat.P90Micros),
		res("fleet", "p99", lat.Count, lat.P99Micros),
	}
	if up := snap.Upstream; up.Count > 0 {
		out = append(out,
			res("daemon", "p50", up.Count, up.P50Micros),
			res("daemon", "p90", up.Count, up.P90Micros),
			res("daemon", "p99", up.Count, up.P99Micros),
		)
	}
	return out, nil
}

// request is one precomputed unit of load: a GET when body is empty, a
// POST of body otherwise. sample opts the request into server-side span
// tracing via X-Trace-Sample, so a load run can deliberately seed the
// daemon's trace store without minting per-request IDs.
type request struct {
	url    string
	body   string
	sample bool
}

// predictStream precomputes the n /v1/predict URLs. Everything that
// varies is drawn from one seeded source, so a (artifact, seed, n, batch,
// k) tuple names one exact workload.
func predictStream(server string, names []string, n, batch, k int, seed int64) []request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]request, n)
	var sb strings.Builder
	for i := range reqs {
		sb.Reset()
		sb.WriteString(server)
		sb.WriteString("/v1/predict?")
		for b := 0; b < batch; b++ {
			if b > 0 {
				sb.WriteByte('&')
			}
			sb.WriteString("protein=")
			sb.WriteString(url.QueryEscape(names[rng.Intn(len(names))]))
		}
		sb.WriteString("&k=")
		sb.WriteString(strconv.Itoa(k))
		reqs[i].url = sb.String()
	}
	return reqs
}

// queryStream precomputes n /v1/query plan bodies, cycling a seeded mix
// of the engine's plan shapes: whole-interactome top-k scans, degree- and
// annotation-filtered scans, per-category grouped top-k, and pinned
// batches of -batch proteins. The same (artifact, seed, n, batch, k)
// tuple names one exact bulk workload, like the predict stream.
func queryStream(server string, names []string, n, batch, k int, seed int64) []request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]request, n)
	for i := range reqs {
		var body string
		switch rng.Intn(4) {
		case 0:
			body = fmt.Sprintf(`{"topk":%d}`, k)
		case 1:
			body = fmt.Sprintf(`{"filter":[{"field":"degree","op":"ge","value":%d},{"field":"annotated","op":"eq","bool":%v}],"topk":%d}`,
				1+rng.Intn(4), rng.Intn(2) == 0, k)
		case 2:
			body = fmt.Sprintf(`{"group_by":"category","topk":%d}`, k)
		case 3:
			var sb strings.Builder
			sb.WriteString(`{"filter":[{"field":"protein","op":"in","names":[`)
			for b := 0; b < batch; b++ {
				if b > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(strconv.Quote(names[rng.Intn(len(names))]))
			}
			sb.WriteString(fmt.Sprintf(`]}],"topk":%d}`, k))
			body = sb.String()
		}
		reqs[i] = request{url: server + "/v1/query", body: body}
	}
	return reqs
}

// parseRowCount reads the row_count field out of a /v1/query response
// header prefix; the header precedes the row stream by construction.
func parseRowCount(prefix []byte) int64 {
	const key = `"row_count":`
	i := bytes.Index(prefix, []byte(key))
	if i < 0 {
		return 0
	}
	var n int64
	for _, c := range prefix[i+len(key):] {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int64(c-'0')
	}
	return n
}

// doRequest issues one request and returns its wall time plus, for bulk
// queries, the row count the daemon reported; the body is read fully so
// connection reuse works and the measurement covers the complete
// response.
func doRequest(client *http.Client, rq request) (time.Duration, int64, error) {
	start := time.Now()
	var req *http.Request
	var err error
	if rq.body == "" {
		req, err = http.NewRequest(http.MethodGet, rq.url, nil)
	} else {
		req, err = http.NewRequest(http.MethodPost, rq.url, strings.NewReader(rq.body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
		}
	}
	if err != nil {
		return 0, 0, err
	}
	if rq.sample {
		req.Header.Set("X-Trace-Sample", "1")
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	var rows int64
	if rq.body != "" {
		// The result header ({"artifact":…,"columns":…,"row_count":N,…)
		// fits well inside the first 256 bytes; rows follow.
		head := make([]byte, 256)
		hn, herr := io.ReadFull(resp.Body, head)
		if herr == io.EOF || herr == io.ErrUnexpectedEOF {
			herr = nil
		}
		if herr != nil {
			err = herr
		}
		rows = parseRowCount(head[:hn])
	}
	if err == nil {
		_, err = io.Copy(io.Discard, resp.Body)
	}
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	d := time.Since(start)
	if err != nil {
		return 0, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("%s: status %d", rq.url, resp.StatusCode)
	}
	return d, rows, nil
}

// runClosedLoop drives the stream with c workers, each issuing its next
// request as soon as the previous one completes.
func runClosedLoop(client *http.Client, reqs []request, c int) ([]time.Duration, int64, int64, time.Duration) {
	lat := make([]time.Duration, len(reqs))
	ok := make([]bool, len(reqs))
	var next, rows, errs int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(reqs) {
					return
				}
				d, r, err := doRequest(client, reqs[i])
				if err != nil {
					atomic.AddInt64(&errs, 1)
					continue
				}
				atomic.AddInt64(&rows, r)
				lat[i], ok[i] = d, true
			}
		}()
	}
	wg.Wait()
	return collect(lat, ok), rows, errs, time.Since(start)
}

// runOpenLoop starts request i at i/rate seconds after the run begins,
// whether or not earlier requests have finished; a daemon that cannot keep
// up accumulates queueing delay in the measured latencies instead of
// silently slowing the generator down.
func runOpenLoop(client *http.Client, reqs []request, rate float64) ([]time.Duration, int64, int64, time.Duration) {
	lat := make([]time.Duration, len(reqs))
	ok := make([]bool, len(reqs))
	var rows, errs int64
	interval := time.Duration(float64(time.Second) / rate)
	start := time.Now()
	var wg sync.WaitGroup
	for i := range reqs {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, r, err := doRequest(client, reqs[i])
			if err != nil {
				atomic.AddInt64(&errs, 1)
				return
			}
			atomic.AddInt64(&rows, r)
			lat[i], ok[i] = d, true
		}(i)
	}
	wg.Wait()
	return collect(lat, ok), rows, errs, time.Since(start)
}

// collect gathers the successful latencies, sorted ascending.
func collect(lat []time.Duration, ok []bool) []time.Duration {
	out := make([]time.Duration, 0, len(lat))
	for i, d := range lat {
		if ok[i] {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// percentile reads the nearest-rank q-quantile from ascending-sorted
// latencies.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// summarize renders the run as benchfmt results: latency percentiles in
// ns_per_op, plus a throughput entry whose ns_per_op is wall_ns/requests.
// kind prefixes the suffixes ("query_" for the bulk workload, "" for
// predict), so the two workloads' results never collide in one snapshot.
func summarize(prefix, kind string, sorted []time.Duration, wall time.Duration) []benchfmt.Result {
	n := int64(len(sorted))
	res := func(suffix string, ns float64) benchfmt.Result {
		return benchfmt.Result{Name: prefix + "/" + kind + suffix, Procs: 1, Iterations: n, NsPerOp: ns}
	}
	return []benchfmt.Result{
		res("p50", float64(percentile(sorted, 0.50))),
		res("p90", float64(percentile(sorted, 0.90))),
		res("p99", float64(percentile(sorted, 0.99))),
		res("max", float64(sorted[n-1])),
		res("throughput", float64(wall.Nanoseconds())/float64(n)),
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"lamofinder/internal/artifact"
	"lamofinder/internal/benchfmt"
	"lamofinder/internal/dataset"
	"lamofinder/internal/label"
	"lamofinder/internal/predict"
	"lamofinder/internal/serve"
)

// fixture writes the paper-example artifact (indexed) to disk and serves
// it, returning the artifact path and the daemon's base URL.
func fixture(t *testing.T) (artPath, serverURL string) {
	t.Helper()
	pe := dataset.NewPaperExample()
	l := label.NewLabelerWithCounts(pe.Corpus, pe.Direct, label.Config{Sigma: 2, MinDirect: 30})
	motifs := l.LabelMotif(pe.Motif)
	task := predict.NewTask(pe.Network, pe.Ontology.NumTerms())
	for p := 0; p < pe.Network.N(); p++ {
		for _, tm := range pe.Corpus.Terms(p) {
			task.Functions[p] = append(task.Functions[p], int(tm))
		}
	}
	names := make([]string, pe.Ontology.NumTerms())
	for tm := range names {
		names[tm] = pe.Ontology.ID(tm)
	}
	art, err := artifact.Build("paper-example", "lamoload test", task, names,
		pe.Corpus, pe.Direct, 30, motifs)
	if err != nil {
		t.Fatal(err)
	}
	art.BuildIndex(2)
	artPath = filepath.Join(t.TempDir(), "model.lamoart")
	if err := art.SaveFile(artPath); err != nil {
		t.Fatal(err)
	}
	loaded, err := artifact.LoadFile(artPath)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(loaded, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return artPath, ts.URL
}

func TestClosedLoopRun(t *testing.T) {
	artPath, url := fixture(t)
	out := filepath.Join(t.TempDir(), "load.json")
	var stderr bytes.Buffer
	code := run([]string{
		"-artifact", artPath, "-server", url,
		"-n", "60", "-c", "3", "-batch", "2", "-k", "4", "-seed", "7",
		"-out", out,
	}, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap benchfmt.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"LoadPredict/p50", "LoadPredict/p90", "LoadPredict/p99", "LoadPredict/max",
		"LoadPredict/throughput",
		"LoadPredict/daemon_p50", "LoadPredict/daemon_p90", "LoadPredict/daemon_p99",
	}
	if len(snap.Results) != len(want) {
		t.Fatalf("results: %+v", snap.Results)
	}
	for i, r := range snap.Results {
		if r.Name != want[i] {
			t.Fatalf("result %d named %q, want %q", i, r.Name, want[i])
		}
		if r.Iterations != 60 || r.NsPerOp <= 0 {
			t.Fatalf("result %+v", r)
		}
	}
	// Percentiles are order statistics of one sorted sample.
	if !(snap.Results[0].NsPerOp <= snap.Results[1].NsPerOp &&
		snap.Results[1].NsPerOp <= snap.Results[2].NsPerOp &&
		snap.Results[2].NsPerOp <= snap.Results[3].NsPerOp) {
		t.Fatalf("percentiles out of order: %+v", snap.Results)
	}
}

// TestQueryWorkloadRun drives the bulk-plan workload end to end and
// checks the query_-prefixed result set, including the rows/sec
// reciprocal derived from the daemon-reported row counts.
func TestQueryWorkloadRun(t *testing.T) {
	artPath, url := fixture(t)
	out := filepath.Join(t.TempDir(), "query.json")
	var stderr bytes.Buffer
	code := run([]string{
		"-artifact", artPath, "-server", url, "-workload", "query",
		"-n", "40", "-c", "2", "-batch", "2", "-k", "3", "-seed", "11",
		"-out", out,
	}, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap benchfmt.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"LoadQuery/query_p50", "LoadQuery/query_p90", "LoadQuery/query_p99",
		"LoadQuery/query_max", "LoadQuery/query_throughput",
		"LoadQuery/query_ns_per_row",
		"LoadQuery/daemon_p50", "LoadQuery/daemon_p90", "LoadQuery/daemon_p99",
	}
	if len(snap.Results) != len(want) {
		t.Fatalf("results: %+v", snap.Results)
	}
	for i, r := range snap.Results {
		if r.Name != want[i] {
			t.Fatalf("result %d named %q, want %q", i, r.Name, want[i])
		}
		if r.Iterations <= 0 || r.NsPerOp <= 0 {
			t.Fatalf("result %+v", r)
		}
	}
	// query_ns_per_row iterates over rows, not requests, and 40 bulk plans
	// over the paper example must stream well over 40 rows.
	if rows := snap.Results[5].Iterations; rows <= 40 {
		t.Fatalf("query_ns_per_row counted %d rows", rows)
	}
	if !strings.Contains(stderr.String(), "rows/s") {
		t.Fatalf("stderr missing rows/s line: %s", stderr.String())
	}
}

func TestBadWorkloadRejected(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-artifact", "x", "-workload", "nope"}, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2: %s", code, stderr.String())
	}
}

func TestOpenLoopAndMerge(t *testing.T) {
	artPath, url := fixture(t)
	bench := filepath.Join(t.TempDir(), "BENCH_x.json")
	seedSnap := benchfmt.NewSnapshot("go test", []benchfmt.Result{
		{Name: "BenchmarkX", Procs: 1, Iterations: 1, NsPerOp: 1},
	})
	if err := seedSnap.WriteFile(bench); err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	code := run([]string{
		"-artifact", artPath, "-server", url,
		"-n", "40", "-rate", "2000", "-seed", "3", "-name", "OpenLoop",
		"-merge-into", bench,
	}, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	var snap benchfmt.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Results) != 9 || snap.Results[0].Name != "BenchmarkX" || snap.Results[1].Name != "OpenLoop/p50" {
		t.Fatalf("merged results: %+v", snap.Results)
	}
	if snap.Results[6].Name != "OpenLoop/daemon_p50" || snap.Results[6].Iterations != 40 {
		t.Fatalf("daemon-side results missing or wrong: %+v", snap.Results[6])
	}
	if !strings.Contains(snap.Command, "go test; lamoload") {
		t.Fatalf("merged command: %q", snap.Command)
	}
}

// TestRequestStreamDeterministic: both workloads are pure functions of
// (names, n, batch, k, seed).
func TestRequestStreamDeterministic(t *testing.T) {
	names := []string{"p1", "p2", "needs escape+", "p4"}
	a := predictStream("http://h", names, 50, 2, 5, 9)
	b := predictStream("http://h", names, 50, 2, 5, 9)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different streams")
	}
	c := predictStream("http://h", names, 50, 2, 5, 10)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
	for _, rq := range a {
		if rq.body != "" {
			t.Fatalf("predict request carries a POST body %q", rq.body)
		}
		if !strings.HasPrefix(rq.url, "http://h/v1/predict?protein=") || !strings.HasSuffix(rq.url, "&k=5") {
			t.Fatalf("malformed url %q", rq.url)
		}
		if strings.Count(rq.url, "protein=") != 2 {
			t.Fatalf("batch size wrong in %q", rq.url)
		}
	}
}

// TestQueryStreamDeterministic: the bulk workload is seeded the same way,
// every request targets /v1/query, and every body is a valid JSON plan.
func TestQueryStreamDeterministic(t *testing.T) {
	names := []string{"p1", "p2", `quote"me`, "p4"}
	a := queryStream("http://h", names, 60, 2, 5, 9)
	b := queryStream("http://h", names, 60, 2, 5, 9)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different streams")
	}
	c := queryStream("http://h", names, 60, 2, 5, 10)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
	shapes := map[string]bool{}
	for _, rq := range a {
		if rq.url != "http://h/v1/query" {
			t.Fatalf("query url %q", rq.url)
		}
		var plan map[string]any
		if err := json.Unmarshal([]byte(rq.body), &plan); err != nil {
			t.Fatalf("plan %q is not JSON: %v", rq.body, err)
		}
		switch {
		case plan["group_by"] == "category":
			shapes["group"] = true
		case plan["filter"] != nil:
			shapes["filter"] = true
		default:
			shapes["scan"] = true
		}
	}
	if len(shapes) != 3 {
		t.Fatalf("60 seeded plans cover shapes %v, want all three", shapes)
	}
}

// TestParseRowCount pins the header scan doRequest uses to count rows.
func TestParseRowCount(t *testing.T) {
	head := `{"artifact":"abc","columns":["protein","score"],"row_count":1234,"rows":[`
	if got := parseRowCount([]byte(head)); got != 1234 {
		t.Fatalf("parseRowCount = %d, want 1234", got)
	}
	if got := parseRowCount([]byte(`{"rows":[`)); got != 0 {
		t.Fatalf("parseRowCount without field = %d, want 0", got)
	}
}

func TestDigestMismatchRefused(t *testing.T) {
	artPath, url := fixture(t)
	// A different artifact file than the daemon serves: note changes digest.
	pe := dataset.NewPaperExample()
	l := label.NewLabelerWithCounts(pe.Corpus, pe.Direct, label.Config{Sigma: 2, MinDirect: 30})
	motifs := l.LabelMotif(pe.Motif)
	task := predict.NewTask(pe.Network, pe.Ontology.NumTerms())
	names := make([]string, pe.Ontology.NumTerms())
	for tm := range names {
		names[tm] = pe.Ontology.ID(tm)
	}
	other, err := artifact.Build("paper-example", "different note", task, names,
		pe.Corpus, pe.Direct, 30, motifs)
	if err != nil {
		t.Fatal(err)
	}
	otherPath := filepath.Join(t.TempDir(), "other.lamoart")
	if err := other.SaveFile(otherPath); err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	if code := run([]string{"-artifact", otherPath, "-server", url, "-n", "5"}, &stderr); code != 1 {
		t.Fatalf("mismatched artifact accepted (exit %d): %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "different artifact") {
		t.Fatalf("stderr: %s", stderr.String())
	}
	// Sanity: the matching artifact is accepted.
	var ok bytes.Buffer
	if code := run([]string{"-artifact", artPath, "-server", url, "-n", "5", "-out",
		filepath.Join(t.TempDir(), "o.json")}, &ok); code != 0 {
		t.Fatalf("matching artifact refused: %s", ok.String())
	}
}

func TestFlagValidation(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-n", "10"}, &stderr); code != 2 {
		t.Fatalf("missing -artifact: exit %d", code)
	}
	for _, bad := range [][]string{
		{"-artifact", "x", "-n", "0"},
		{"-artifact", "x", "-c", "0"},
		{"-artifact", "x", "-batch", "-1"},
		{"-artifact", "x", "-rate", "-3"},
		{"-artifact", "x", "extra"},
	} {
		if code := run(bad, &stderr); code != 2 {
			t.Fatalf("%v: exit %d, want 2", bad, code)
		}
	}
}

// Command lamofinder runs the full pipeline — mine network motifs, test
// them against a randomized null model, and label them with GO terms — on a
// PPI edge list plus annotations, or on the built-in synthetic yeast
// interactome when no files are given.
//
// Usage:
//
//	lamofinder [-edges ppi.tsv -obo go.obo -ann annotations.tsv]
//	           [-minfreq N] [-maxsize K] [-sigma S] [-uniq U] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"lamofinder/internal/dataset"
	"lamofinder/internal/graph"
	"lamofinder/internal/label"
	"lamofinder/internal/motif"
	"lamofinder/internal/ontology"
)

func main() {
	edges := flag.String("edges", "", "interaction edge list (protein pairs); empty = synthetic yeast")
	obo := flag.String("obo", "", "GO ontology in OBO format (required with -edges)")
	ann := flag.String("ann", "", "protein annotations (protein<TAB>term; required with -edges)")
	minFreq := flag.Int("minfreq", 30, "motif frequency threshold")
	maxSize := flag.Int("maxsize", 12, "maximum motif size")
	sigma := flag.Int("sigma", 10, "labeled motif frequency threshold")
	uniq := flag.Float64("uniq", 0.95, "uniqueness threshold")
	nullNets := flag.Int("nullnets", 5, "randomized networks for the uniqueness test")
	seed := flag.Int64("seed", 42, "seed for synthetic data and null model")
	top := flag.Int("top", 20, "labeled motifs to print")
	dictOut := flag.String("dict", "", "write the labeled motif dictionary (JSON lines) to this file")
	dotOut := flag.String("dot", "", "write the top labeled motif as Graphviz DOT to this file")
	flag.Parse()

	var (
		net    *graph.Graph
		corpus *ontology.Corpus
		o      *ontology.Ontology
	)
	if *edges != "" {
		if *obo == "" || *ann == "" {
			fatalf("-edges requires -obo and -ann")
		}
		ef, err := os.Open(*edges)
		check(err)
		defer func() { _ = ef.Close() }() // read-only open; close error is unactionable
		var names []string
		net, names, err = dataset.LoadEdgeList(ef)
		check(err)
		of, err := os.Open(*obo)
		check(err)
		defer func() { _ = of.Close() }() // read-only open; close error is unactionable
		o, err = ontology.ParseOBO(of)
		check(err)
		af, err := os.Open(*ann)
		check(err)
		defer func() { _ = af.Close() }() // read-only open; close error is unactionable
		var skipped int
		corpus, skipped, err = dataset.LoadAnnotations(af, o, names)
		check(err)
		fmt.Printf("loaded %d proteins, %d interactions, %d terms (%d annotations skipped)\n",
			net.N(), net.M(), o.NumTerms(), skipped)
	} else {
		cfg := dataset.DefaultYeastConfig()
		cfg.Seed = *seed
		y := dataset.NewYeast(cfg)
		net = y.Network
		corpus = y.Corpora[dataset.Process]
		o = corpus.Ontology()
		fmt.Printf("synthetic yeast interactome: %d proteins, %d interactions, %d annotated\n",
			net.N(), net.M(), corpus.NumAnnotated())
	}

	mineCfg := motif.DefaultConfig()
	mineCfg.MinFreq = *minFreq
	mineCfg.MaxSize = *maxSize
	mineCfg.Seed = *seed
	fmt.Printf("mining motifs (sizes %d..%d, min frequency %d)...\n",
		mineCfg.MinSize, mineCfg.MaxSize, mineCfg.MinFreq)
	motifs := motif.Find(net, mineCfg)
	fmt.Printf("  %d pattern classes\n", len(motifs))

	nullCfg := motif.DefaultUniquenessConfig()
	nullCfg.Networks = *nullNets
	nullCfg.Seed = *seed
	fmt.Printf("uniqueness test against %d randomized networks...\n", nullCfg.Networks)
	motif.ScoreUniqueness(net, motifs, nullCfg)
	unique := motif.FilterUnique(motifs, *uniq)
	fmt.Printf("  %d network motifs with uniqueness >= %.2f\n", len(unique), *uniq)

	labCfg := label.DefaultConfig()
	labCfg.Sigma = *sigma
	fmt.Printf("labeling with LaMoFinder (sigma=%d)...\n", labCfg.Sigma)
	labeler := label.NewLabeler(corpus, labCfg)
	labeled := labeler.LabelAll(unique)
	fmt.Printf("  %d labeled network motifs\n", len(labeled))

	for i, lm := range labeled {
		if i >= *top {
			fmt.Printf("  ... and %d more\n", len(labeled)-*top)
			break
		}
		fmt.Printf("  %s\n", lm.Describe(o))
	}

	if *dictOut != "" && len(labeled) > 0 {
		f, err := os.Create(*dictOut)
		check(err)
		check(label.WriteMotifs(f, o, labeled))
		check(f.Close())
		fmt.Printf("dictionary written to %s\n", *dictOut)
	}
	if *dotOut != "" && len(labeled) > 0 {
		f, err := os.Create(*dotOut)
		check(err)
		check(label.WriteDOT(f, o, labeled[0], "motif"))
		check(f.Close())
		fmt.Printf("DOT written to %s\n", *dotOut)
	}
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lamofinder: "+format+"\n", args...)
	os.Exit(1)
}

// Command gostats inspects a GO ontology plus annotations: term weights,
// informative and border informative functional classes, and term
// similarity queries — the Section-2 machinery of the paper.
//
// Usage:
//
//	gostats -obo go.obo -ann annotations.tsv -names proteins.txt [-mindirect 30]
//	gostats -example            # the paper's Figure-1/Table-1 worked example
//	gostats -example -sim G08,G09
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"lamofinder/internal/dataset"
	"lamofinder/internal/ontology"
)

func main() {
	obo := flag.String("obo", "", "GO ontology in OBO format")
	ann := flag.String("ann", "", "protein annotations (protein<TAB>term)")
	namesFile := flag.String("names", "", "protein name list (one per line)")
	example := flag.Bool("example", false, "use the paper's Figure-1 worked example")
	minDirect := flag.Int("mindirect", 30, "informative-FC direct annotation threshold")
	sim := flag.String("sim", "", "term pair \"A,B\" to score with Lin similarity")
	top := flag.Int("top", 25, "terms to print")
	flag.Parse()

	var (
		o      *ontology.Ontology
		direct []int
	)
	switch {
	case *example:
		pe := dataset.NewPaperExample()
		o, direct = pe.Ontology, pe.Direct
	case *obo != "":
		f, err := os.Open(*obo)
		check(err)
		defer func() { _ = f.Close() }() // read-only open; close error is unactionable
		o, err = ontology.ParseOBO(f)
		check(err)
		if *ann == "" || *namesFile == "" {
			fatalf("-obo requires -ann and -names for weight computation")
		}
		names, err := readLines(*namesFile)
		check(err)
		af, err := os.Open(*ann)
		check(err)
		defer func() { _ = af.Close() }() // read-only open; close error is unactionable
		corpus, skipped, err := dataset.LoadAnnotations(af, o, names)
		check(err)
		fmt.Printf("%d annotations skipped\n", skipped)
		direct = corpus.DirectCounts()
	default:
		fatalf("need -obo or -example")
	}

	w := o.ComputeWeights(direct)
	incl := o.InclusiveCounts(direct)

	if *sim != "" {
		a, b, ok := strings.Cut(*sim, ",")
		if !ok {
			fatalf("-sim wants \"A,B\"")
		}
		ta, tb := o.Index(strings.TrimSpace(a)), o.Index(strings.TrimSpace(b))
		if ta < 0 || tb < 0 {
			fatalf("unknown term in %q", *sim)
		}
		lca := o.LCA(w, ta, tb)
		fmt.Printf("ST(%s,%s) = %.4f (lowest common parent %s, w=%.3f)\n",
			a, b, o.Lin(w, ta, tb), o.ID(lca), w[lca])
		return
	}

	fmt.Printf("ontology: %d terms, %d roots\n", o.NumTerms(), len(o.Roots()))
	inf := o.InformativeFC(direct, *minDirect)
	border := o.BorderInformativeFC(direct, *minDirect)
	fmt.Printf("informative FC (>=%d direct): %d; border informative FC: %d\n",
		*minDirect, len(inf), len(border))
	fmt.Printf("border informative FC: %s\n", idList(o, border))

	type row struct {
		t int
		w float64
	}
	rows := make([]row, 0, o.NumTerms())
	for t := 0; t < o.NumTerms(); t++ {
		rows = append(rows, row{t, w[t]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].w > rows[j].w })
	fmt.Printf("%-14s %8s %10s %8s\n", "term", "direct", "inclusive", "weight")
	for i, r := range rows {
		if i >= *top {
			fmt.Println("...")
			break
		}
		fmt.Printf("%-14s %8d %10d %8.3f\n", o.ID(r.t), direct[r.t], incl[r.t], r.w)
	}
}

func idList(o *ontology.Ontology, ts []int) string {
	ids := make([]string, len(ts))
	for i, t := range ts {
		ids[i] = o.ID(t)
	}
	return strings.Join(ids, ", ")
}

func readLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only open; close error is unactionable
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			out = append(out, line)
		}
	}
	return out, sc.Err()
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gostats: "+format+"\n", args...)
	os.Exit(1)
}

// Command lamod is the labeled-motif model daemon. `lamod build` runs the
// expensive offline pipeline (synthetic MIPS benchmark -> motif mining ->
// uniqueness filter -> LaMoFinder labeling) once and packages the result
// into a checksummed artifact file; `lamod serve` loads such an artifact
// and answers prediction queries over HTTP until SIGTERM/SIGINT; `lamod
// gateway` (the lamogate router) fronts several serve daemons as one
// health-gated, consistently-hashed fleet with rolling artifact rollout.
//
// `lamod query` runs a bulk prediction plan offline, straight from an
// artifact file — the same columnar engine /v1/query serves, without a
// daemon in the way.
//
// Usage:
//
//	lamod build -out FILE [-quick] [-proteins N] [-edges M] [-seed S] [-note TEXT]
//	            [-noindex] [-index-parallelism N] [-stats]
//	lamod query -artifact FILE [-plan FILE] [-topk N] [-group-by category]
//	            [-min-degree N] [-max-degree N] [-min-score X]
//	            [-annotated BOOL] [-proteins A,B] [-project COLS]
//	            [-parallelism N]
//	lamod serve -artifact FILE [-addr HOST:PORT] [-parallelism N]
//	            [-cache N] [-timeout D] [-drain D] [-pprof]
//	            [-reload] [-reload-dir DIR]
//	            [-log-level LEVEL] [-log-format json|logfmt] [-access-log-size N]
//	lamod gateway -replicas HOST:PORT,HOST:PORT,... [-addr HOST:PORT]
//	            [-vnodes N] [-probe-interval D] [-fail-threshold N]
//	            [-attempts N] [-hedge-max D] [-drain D]
//	            [-log-level LEVEL] [-log-format json|logfmt]
//
// build always traces its pipeline stages (census, uniqueness, labeling,
// clustering, ranking) into the artifact's build metadata; -stats prints
// the stage table after the build. serve emits structured access logs to
// stderr at -log-level info and below (-log-level off disables them).
// serve -reload exposes POST /v1/admin/reload for zero-downtime artifact
// swaps (restricted to -reload-dir when set); gateway drives that
// endpoint fleet-wide via POST /v1/admin/rollout, one replica at a time.
//
// build computes the dense score index by default, so the daemon answers
// /v1/predict straight from precomputed rankings (format v2); -noindex
// writes the smaller v1 artifact and the daemon scores on demand instead.
// Either artifact serves byte-identical responses.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"lamofinder/internal/artifact"
	"lamofinder/internal/experiments"
	"lamofinder/internal/fleet"
	"lamofinder/internal/obs"
	"lamofinder/internal/par"
	"lamofinder/internal/query"
	"lamofinder/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: lamod <build|query|serve|gateway> [flags]")
		return 2
	}
	switch args[0] {
	case "build":
		return runBuild(args[1:])
	case "query":
		return runQuery(args[1:])
	case "serve":
		return runServe(args[1:])
	case "gateway":
		return runGateway(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "lamod: unknown subcommand %q (want build, query, serve, or gateway)\n", args[0])
		return 2
	}
}

func runBuild(args []string) int {
	fs := flag.NewFlagSet("lamod build", flag.ContinueOnError)
	out := fs.String("out", "", "artifact output path (required)")
	quick := fs.Bool("quick", false, "reduced-scale preset")
	proteins := fs.Int("proteins", 0, "override protein count (0 = preset)")
	edges := fs.Int("edges", 0, "override interaction count (0 = preset)")
	seed := fs.Int64("seed", 0, "override dataset seed (0 = preset)")
	note := fs.String("note", "", "free-form note stored in the artifact")
	noindex := fs.Bool("noindex", false, "skip the score index: smaller artifact, on-demand serving")
	indexWorkers := fs.Int("index-parallelism", 0, "workers building the score index (0 = GOMAXPROCS)")
	stats := fs.Bool("stats", false, "print the per-stage build trace after the build")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "lamod build: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "lamod build: -out is required")
		fs.Usage()
		return 2
	}
	cfg := experiments.DefaultFigure9Config()
	if *quick {
		cfg = experiments.QuickFigure9Config()
	}
	if *proteins < 0 || *edges < 0 {
		fmt.Fprintln(os.Stderr, "lamod build: -proteins and -edges must be non-negative")
		return 2
	}
	if *proteins > 0 {
		cfg.MIPS.Proteins = *proteins
	}
	if *edges > 0 {
		cfg.MIPS.Edges = *edges
	}
	if *seed != 0 {
		cfg.MIPS.Seed = *seed
	}

	start := time.Now()
	rec := &obs.StageRecorder{}
	mined := experiments.MineLabeledTraced(cfg, rec)
	m := mined.MIPS
	names := make([]string, len(m.CategoryTerm))
	for c, ct := range m.CategoryTerm {
		names[c] = m.Ontology.ID(ct)
	}
	art, err := artifact.Build("synthetic-mips", *note, m.Task, names,
		m.Corpus, m.Corpus.DirectCounts(), cfg.Label.MinDirect, mined.Labeled)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lamod build: %v\n", err)
		return 1
	}
	if !*noindex {
		st := rec.Start("ranking")
		art.BuildIndex(*indexWorkers)
		st.End(int64(art.Graph.N()), par.Workers(*indexWorkers))
	}
	// The stage trace rides inside the artifact (format v3/v4) so `lamoctl
	// inspect` can show where build time went; it is excluded from the
	// identity digest, so rebuilds of the same model keep one digest.
	art.Stats = rec.Stages()
	if err := art.SaveFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "lamod build: %v\n", err)
		return 1
	}
	digest, err := art.Digest()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lamod build: %v\n", err)
		return 1
	}
	indexed := "indexed (format v4)"
	if art.Index == nil {
		indexed = "unindexed (format v3)"
	}
	fmt.Printf("wrote %s\n", *out)
	fmt.Printf("  artifact %s %s\n", digest, indexed)
	fmt.Printf("  proteins=%d interactions=%d functions=%d\n",
		art.Graph.N(), art.Graph.M(), art.NumFunctions)
	fmt.Printf("  mined=%d unique=%d labeled=%d\n",
		mined.MinedClasses, mined.UniqueMotifs, len(mined.Labeled))
	fmt.Printf("  [%v]\n", time.Since(start).Round(time.Millisecond))
	if *stats {
		if err := rec.WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "lamod build: %v\n", err)
			return 1
		}
	}
	return 0
}

// runQuery executes one bulk plan against an artifact file and streams
// the result JSON — byte-identical to what a daemon serving the same
// artifact would return from /v1/query — to stdout.
func runQuery(args []string) int {
	fs := flag.NewFlagSet("lamod query", flag.ContinueOnError)
	path := fs.String("artifact", "", "artifact file to query (required)")
	parallelism := fs.Int("parallelism", 0, "scan workers (0 = GOMAXPROCS); output bytes do not depend on this")
	pf := query.AddPlanFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "lamod query: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if *path == "" {
		fmt.Fprintln(os.Stderr, "lamod query: -artifact is required")
		fs.Usage()
		return 2
	}
	plan, err := pf.Plan()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lamod query: %v\n", err)
		return 2
	}
	art, err := artifact.LoadFile(*path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lamod query: %v\n", err)
		return 1
	}
	view, err := query.NewView(art, *parallelism)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lamod query: %v\n", err)
		return 1
	}
	res, fe := query.Execute(view, plan, *parallelism)
	if fe != nil {
		fmt.Fprintf(os.Stderr, "lamod query: invalid plan: %v\n", fe)
		return 2
	}
	if _, err := res.WriteTo(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "lamod query: %v\n", err)
		return 1
	}
	return 0
}

func runServe(args []string) int {
	fs := flag.NewFlagSet("lamod serve", flag.ContinueOnError)
	path := fs.String("artifact", "", "artifact file to serve (required)")
	addr := fs.String("addr", "127.0.0.1:8077", "listen address")
	parallelism := fs.Int("parallelism", 0, "scoring workers per batch (0 = GOMAXPROCS)")
	cacheSize := fs.Int("cache", 0, "LRU entries (0 = default)")
	timeout := fs.Duration("timeout", 0, "per-request deadline (0 = default)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
	enablePprof := fs.Bool("pprof", false, "expose /debug/pprof/ (stacks and heap contents; opt-in only)")
	allowReload := fs.Bool("reload", false, "expose POST /v1/admin/reload for zero-downtime artifact swaps")
	reloadDir := fs.String("reload-dir", "", "restrict reload artifact paths to this directory (default: the -artifact file's directory)")
	logLevel := fs.String("log-level", "info", "structured log level: debug, info, warn, error, off")
	logFormat := fs.String("log-format", "json", "structured log format: json or logfmt")
	accessLogSize := fs.Int("access-log-size", 0, "access-log ring entries (0 = default); overflow drops, never blocks")
	traceSample := fs.Int("trace-sample", 0, "span-trace head sampling: 1 in N requests (0 = default 16, negative = forced-only)")
	traceStore := fs.Int("trace-store", 0, "finished-trace ring entries served by /v1/traces (0 = default 256)")
	exemplars := fs.Bool("exemplars", false, "annotate /metrics latency histograms with OpenMetrics trace-ID exemplars")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "lamod serve: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if *path == "" {
		fmt.Fprintln(os.Stderr, "lamod serve: -artifact is required")
		fs.Usage()
		return 2
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lamod serve: %v\n", err)
		return 2
	}
	format, err := obs.ParseFormat(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lamod serve: %v\n", err)
		return 2
	}
	var logger *obs.Logger
	if level < obs.LevelOff {
		// Access logs go to stderr: stdout stays reserved for the operator
		// lines the smoke scripts grep.
		logger = obs.NewLogger(os.Stderr, level, format)
	}
	art, err := artifact.LoadFile(*path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lamod serve: %v\n", err)
		return 1
	}
	if *allowReload && *reloadDir == "" {
		// Restricting reloads to the directory the serving artifact came
		// from is the safe default; -reload-dir widens it deliberately.
		*reloadDir = filepath.Dir(*path)
	}
	s, err := serve.New(art, serve.Config{
		Parallelism:      *parallelism,
		CacheSize:        *cacheSize,
		RequestTimeout:   *timeout,
		EnablePprof:      *enablePprof,
		AllowReload:      *allowReload,
		ReloadDir:        *reloadDir,
		Logger:           logger,
		AccessLogSize:    *accessLogSize,
		Trace:            obs.NewTraceSource("lamod", 0),
		TraceSampleEvery: *traceSample,
		TraceStoreSize:   *traceStore,
		PromExemplars:    *exemplars,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lamod serve: %v\n", err)
		return 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	mode := "index"
	if !s.Indexed() {
		mode = "on-demand"
	}
	fmt.Printf("serving %s on %s (artifact %s, %s scoring)\n", *path, *addr, s.Digest(), mode)
	if err := s.ListenAndServe(ctx, *addr, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "lamod serve: %v\n", err)
		return 1
	}
	fmt.Println("shut down cleanly")
	return 0
}

func runGateway(args []string) int {
	fs := flag.NewFlagSet("lamod gateway", flag.ContinueOnError)
	replicas := fs.String("replicas", "", "comma-separated replica addresses, host:port or URLs (required)")
	addr := fs.String("addr", "127.0.0.1:8070", "listen address")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = default)")
	probeInterval := fs.Duration("probe-interval", 0, "health-probe period (0 = default)")
	failThreshold := fs.Int("fail-threshold", 0, "consecutive probe failures before eject (0 = default)")
	attempts := fs.Int("attempts", 0, "max distinct replicas tried per request (0 = default)")
	hedgeMax := fs.Duration("hedge-max", 0, "hedge-delay ceiling; negative disables hedging (0 = default)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
	logLevel := fs.String("log-level", "info", "structured log level: debug, info, warn, error, off")
	logFormat := fs.String("log-format", "json", "structured log format: json or logfmt")
	traceSample := fs.Int("trace-sample", 0, "span-trace head sampling: 1 in N requests (0 = default 16, negative = forced-only)")
	traceStore := fs.Int("trace-store", 0, "finished-trace ring entries served by /v1/traces (0 = default 256)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "lamod gateway: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if *replicas == "" {
		fmt.Fprintln(os.Stderr, "lamod gateway: -replicas is required")
		fs.Usage()
		return 2
	}
	var members []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			members = append(members, r)
		}
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lamod gateway: %v\n", err)
		return 2
	}
	format, err := obs.ParseFormat(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lamod gateway: %v\n", err)
		return 2
	}
	var logger *obs.Logger
	if level < obs.LevelOff {
		logger = obs.NewLogger(os.Stderr, level, format)
	}
	rt, err := fleet.New(fleet.Config{
		Replicas:         members,
		VNodes:           *vnodes,
		ProbeInterval:    *probeInterval,
		FailThreshold:    *failThreshold,
		MaxAttempts:      *attempts,
		HedgeMax:         *hedgeMax,
		Logger:           logger,
		TraceSampleEvery: *traceSample,
		TraceStoreSize:   *traceStore,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lamod gateway: %v\n", err)
		return 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("routing on %s over %d replicas: %s\n",
		*addr, len(rt.Members()), strings.Join(rt.Members(), ", "))
	if err := rt.ListenAndServe(ctx, *addr, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "lamod gateway: %v\n", err)
		return 1
	}
	fmt.Println("shut down cleanly")
	return 0
}

// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run table1|table3|table4|fig6|fig7|fig9|all [-quick] [-seed N]
//
// -quick selects reduced-scale presets (minutes -> seconds); the default
// presets run at the paper's dataset scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lamofinder/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment to run: table1, table3, table4, fig6, fig7, fig8, fig9, all")
	quick := flag.Bool("quick", false, "use reduced-scale presets")
	seed := flag.Int64("seed", 0, "override dataset seed (0 = preset default)")
	flag.Parse()

	ok := false
	runOne := func(name string, f func() error) {
		if *run != "all" && *run != name {
			return
		}
		ok = true
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	runOne("table1", func() error { return experiments.Table1().WriteText(os.Stdout) })
	runOne("table3", func() error { return experiments.Table3().WriteText(os.Stdout) })
	runOne("table4", func() error { return experiments.Table4().WriteText(os.Stdout) })
	runOne("fig8", func() error { return experiments.Figure8().WriteText(os.Stdout) })
	runOne("fig6", func() error {
		cfg := experiments.DefaultFigure6Config()
		if *quick {
			cfg = experiments.QuickFigure6Config()
		}
		if *seed != 0 {
			cfg.Yeast.Seed = *seed
		}
		return experiments.Figure6(cfg).WriteText(os.Stdout)
	})
	runOne("fig7", func() error {
		cfg := experiments.DefaultFigure7Config()
		if *seed != 0 {
			cfg.Yeast.Seed = *seed
		}
		return experiments.Figure7(cfg).WriteText(os.Stdout)
	})
	runOne("fig9", func() error {
		cfg := experiments.DefaultFigure9Config()
		if *quick {
			cfg = experiments.QuickFigure9Config()
		}
		if *seed != 0 {
			cfg.MIPS.Seed = *seed
		}
		return experiments.Figure9(cfg).WriteText(os.Stdout)
	})

	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		flag.Usage()
		os.Exit(2)
	}
}
